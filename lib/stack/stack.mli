(** Composable ordering stack: one layered delivery pipeline.

    The paper's architecture (Fig. 4) is a stack — transport at the
    bottom, a causal broadcast layer above it, an optional interposed
    total-order function above that, the application on top.  The seed
    code had one bespoke wiring per engine; this module builds any
    composition

    {v transport -> (per-link fifo) -> causal -> (total) -> app v}

    from interchangeable parts:

    {ul
    {- {b causal}: {!ordering} selects per-sender FIFO only, vector-clock
       BSS, Psync conversations, or explicit-dependency OSend;}
    {- {b total}: {!total} selects nothing ([Pass]), the sync-anchored
       deterministic merge, the count-closed merge, or a fixed
       sequencer (OSend only — it rides the causal chain).}}

    Every layer reports the same {!Metrics.t}, so the same workload run
    over different compositions produces directly comparable tables.
    The stack reuses the engines of [Causalb_core] unchanged (they
    implement {!Layer.S}); on the same seed, a composed run consumes the
    exact random stream of the corresponding standalone driver, so
    delivery counts and forced-wait numbers match the pre-stack code. *)

module Label := Causalb_graph.Label
module Message := Causalb_core.Message
module Metrics := Causalb_stackbase.Metrics

(** The one generic group wrapper (members + network wiring) that the
    per-engine [Group] submodules of [Causalb_core] are built on. *)
module Group = Causalb_stackbase.Sgroup

type ordering =
  | Fifo   (** per-sender FIFO only — the under-ordered baseline *)
  | Bss    (** vector-clock CBCAST: inferred potential causality *)
  | Psync  (** conversation contexts: explicit graph, inferred relation *)
  | Osend  (** explicit application dependencies (paper §3.3) *)
  | Pc
      (** PC-broadcast: constant-size headers, causal order from FIFO
          links ([Causalb_core.Pcbcast]).  Requires [fifo = true] — the
          static verifier flags the unsound composition otherwise. *)

type 'a total =
  | Pass  (** causal delivery goes straight to the application *)
  | Merge of ('a Message.t -> bool)
      (** sync-anchored deterministic merge; the predicate recognises the
          closing sync message (paper §6.1) *)
  | Counted of int
      (** batch released every [n] causal deliveries (paper §6.2) *)
  | Sequencer of { node : int }
      (** fixed sequencer at [node]; requires [ordering = Osend].  The
          submission hop uses the stack's transport latency model. *)

type 'a t

val compose :
  ?ordering:ordering ->
  ?total:'a total ->
  ?latency:Causalb_sim.Latency.t ->
  ?fifo:bool ->
  ?fault:Causalb_net.Fault.t ->
  ?trace:Causalb_sim.Trace.t ->
  ?on_deliver:(node:int -> time:float -> 'a Message.t -> unit) ->
  Causalb_sim.Engine.t ->
  nodes:int ->
  unit ->
  'a t
(** Build the pipeline over a fresh network on [engine].  Defaults:
    [ordering = Osend], [total = Pass], [latency = Latency.lan],
    [fifo = true] (per-link FIFO transport).  [on_deliver] fires at each
    node as the top layer releases a message.
    @raise Invalid_argument for a sequencer over a non-OSend causal
    layer, or a sequencer node out of range. *)

val submit : 'a t -> src:int -> ?name:string -> ?dep:Causalb_graph.Dep.t ->
  'a -> Label.t option
(** Hand one application message to the stack at [src].  [dep] is the
    explicit ordering predicate; layers that infer their own ordering
    (FIFO, BSS, Psync) ignore it.  Returns the message's label — [None]
    under a sequencer, which allocates the label after the submission
    hop. *)

val run : 'a t -> unit
(** Drain the engine ([Engine.run]). *)

val engine : 'a t -> Causalb_sim.Engine.t

val size : 'a t -> int

val delivered_order : 'a t -> int -> Label.t list
(** Labels in the order the application saw them at a node (after any
    total-order layer). *)

val all_delivered_orders : 'a t -> Label.t list list

val delivered_count : 'a t -> int -> int

val messages_sent : 'a t -> int
(** Unicast copies on the wire. *)

val blocked_on : 'a t -> int -> Label.t list
(** Ancestor labels a node's causal layer is missing entirely (never
    received) — non-empty when a partition swallowed messages.  Always
    empty for FIFO/BSS/Pc, which do not name ancestors. *)

val osend_group : 'a t -> 'a Causalb_core.Group.t option
(** The underlying OSend group when [ordering = Osend] — recovery
    protocols (and tests) use it to re-inject lost labelled messages. *)

val graph : 'a t -> Causalb_graph.Depgraph.t option
(** The dependency graph member 0's causal engine extracted from the
    messages it has seen — the [R(M)] the offline checkers audit delivery
    against.  [Some] for the engines that build one (OSend, Psync, and
    Pc's shared audit graph), [None] for FIFO/BSS, which never name
    ancestors.  Do not mutate. *)

val partition : 'a t -> int list list -> unit
(** Partition the underlying network (see {!Causalb_net.Net.partition}). *)

val heal : 'a t -> unit

val set_fault : 'a t -> Causalb_net.Fault.t -> unit
(** Swap the injected-fault profile on the underlying network mid-run —
    the hook nemesis schedules use for timed loss/dup/jitter phases. *)

val lost_copies : 'a t -> int
(** Copies the transport dropped before arrival (partition + injected
    loss, see {!Causalb_net.Net.lost_copies}).  [0] iff the run's
    completeness properties are checkable. *)

val install_nemesis : 'a t -> Causalb_net.Nemesis.t -> unit
(** Arm a timed fault schedule on the stack's engine, driving this
    stack's partition/heal/set_fault. *)

val metrics : 'a t -> Metrics.t list
(** One row per layer, bottom-up: transport, causal, and the total-order
    layer when present.  Counters are summed across members; latency is
    the stack-measured submit-to-release distribution of that layer. *)

val layer_guarantees :
  ordering:ordering ->
  total:'a total ->
  fifo:bool ->
  (string * Causalb_stackbase.Guarantee.t * Causalb_stackbase.Guarantee.t)
  list
(** Bottom-up [(layer, requires, provides)] descriptors of the pipeline
    [compose] would build from the same arguments — the input of the
    static verifier ([Causalb_analysis.Stack_verify]).  The transport row
    provides [Fifo] under per-link FIFO ([fifo = true]) and [Unordered]
    otherwise; every other row carries the declaration of the engine
    implementing it ({!Layer.S}). *)

val guarantee : 'a t -> Causalb_stackbase.Guarantee.t
(** The top-of-stack ordering guarantee of this composition — the join of
    every layer's [provides], {e assuming} each layer's requirement is
    met (which [Causalb_analysis.Stack_verify.verify] checks). *)

val describe : 'a t -> string
(** ["transport -> causal:osend -> total:merge -> app"]. *)

val pp_metrics : Format.formatter -> 'a t -> unit
