type 'a cell = { value : 'a; mutable next : 'a cell option }

type 'a t = {
  mutable head : 'a cell option;
  mutable tail : 'a cell option;
  mutable len : int;
}

let create () = { head = None; tail = None; len = 0 }

let length q = q.len

let is_empty q = q.len = 0

let push q x =
  let cell = { value = x; next = None } in
  (match q.tail with
  | None -> q.head <- Some cell
  | Some last -> last.next <- Some cell);
  q.tail <- Some cell;
  q.len <- q.len + 1

let pop q =
  match q.head with
  | None -> None
  | Some cell ->
    q.head <- cell.next;
    if cell.next = None then q.tail <- None;
    q.len <- q.len - 1;
    Some cell.value

let peek q =
  match q.head with None -> None | Some cell -> Some cell.value

let iter f q =
  let rec go = function
    | None -> ()
    | Some cell ->
      f cell.value;
      go cell.next
  in
  go q.head

let fold f acc q =
  let rec go acc = function
    | None -> acc
    | Some cell -> go (f acc cell.value) cell.next
  in
  go acc q.head

let clear q =
  q.head <- None;
  q.tail <- None;
  q.len <- 0

let drain f q =
  iter f q;
  clear q

let to_list q = List.rev (fold (fun acc x -> x :: acc) [] q)
