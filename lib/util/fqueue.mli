(** Imperative FIFO queue with O(1) push, pop and length.

    The wakeup buckets of the indexed hold-back queues (see
    {!Causalb_core.Osend}) append a waiter per unmet ancestor at buffer
    time and consume the whole bucket when that ancestor delivers; both
    ends must be constant-time and iteration must preserve insertion
    (arrival) order, which is the delivery tie-break.  The standard
    library [Queue] would do; this variant adds the non-destructive
    traversals the engines and their tests need. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Append at the tail.  O(1). *)

val pop : 'a t -> 'a option
(** Remove and return the head (oldest element).  O(1). *)

val peek : 'a t -> 'a option

val iter : ('a -> unit) -> 'a t -> unit
(** Head-to-tail traversal; the queue is not modified. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val drain : ('a -> unit) -> 'a t -> unit
(** [iter] then [clear]: consume every element in insertion order. *)

val to_list : 'a t -> 'a list
(** Elements head-to-tail; the queue is not modified. *)

val clear : 'a t -> unit
