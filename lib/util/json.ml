(* Minimal JSON: enough for the worker pool's result stream and the
   bench artifacts.  Emits canonically (objects keep insertion order, no
   insignificant whitespace unless pretty-printed), parses the full value
   grammar.  No external dependency — the pool forks workers that talk
   JSON lines over pipes, so encode/decode must live in the repo. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Integral floats print without a fractional part so counters stay
   readable; everything else keeps full round-trip precision. *)
let add_num buf x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else Buffer.add_string buf (Printf.sprintf "%.17g" x)

let rec emit ?(indent = None) ~level buf v =
  let nl pad =
    match indent with
    | None -> ()
    | Some step ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (step * pad) ' ')
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x -> add_num buf x
  | Str s -> escape_to buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        nl (level + 1);
        emit ~indent ~level:(level + 1) buf item)
      items;
    nl level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_char buf ',';
        nl (level + 1);
        escape_to buf k;
        Buffer.add_string buf (if indent = None then ":" else ": ");
        emit ~indent ~level:(level + 1) buf item)
      fields;
    nl level;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit ~level:0 buf v;
  Buffer.contents buf

let to_string_pretty v =
  let buf = Buffer.create 1024 in
  emit ~indent:(Some 2) ~level:0 buf v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let fail c msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_hex4 c =
  if c.pos + 4 > String.length c.src then fail c "truncated \\u escape";
  let v = int_of_string ("0x" ^ String.sub c.src c.pos 4) in
  c.pos <- c.pos + 4;
  v

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' ->
      advance c;
      Buffer.contents buf
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some '"' -> Buffer.add_char buf '"'; advance c
      | Some '\\' -> Buffer.add_char buf '\\'; advance c
      | Some '/' -> Buffer.add_char buf '/'; advance c
      | Some 'n' -> Buffer.add_char buf '\n'; advance c
      | Some 'r' -> Buffer.add_char buf '\r'; advance c
      | Some 't' -> Buffer.add_char buf '\t'; advance c
      | Some 'b' -> Buffer.add_char buf '\b'; advance c
      | Some 'f' -> Buffer.add_char buf '\012'; advance c
      | Some 'u' ->
        advance c;
        let code = parse_hex4 c in
        (* We only emit \u00xx for control bytes; decode the low range
           directly and pass anything else through as UTF-8. *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
      | _ -> fail c "bad escape");
      go ()
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    (ch >= '0' && ch <= '9')
    || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E'
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  if c.pos = start then fail c "expected number";
  match float_of_string_opt (String.sub c.src start (c.pos - start)) with
  | Some x -> x
  | None -> fail c "malformed number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws c;
        let key = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields ((key, v) :: acc)
        | Some '}' ->
          advance c;
          List.rev ((key, v) :: acc)
        | _ -> fail c "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> fail c "expected ',' or ']'"
      in
      List (items [])
    end
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> Num (parse_number c)
  | None -> fail c "unexpected end of input"

let of_string s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage";
  v

(* --- accessors (raise [Parse_error] on shape mismatch) --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let get_string = function
  | Str s -> s
  | _ -> raise (Parse_error "expected string")

let get_float = function
  | Num x -> x
  | _ -> raise (Parse_error "expected number")

let get_int v = int_of_float (get_float v)

let get_bool = function
  | Bool b -> b
  | _ -> raise (Parse_error "expected bool")

let get_list = function
  | List l -> l
  | _ -> raise (Parse_error "expected array")
