(** Minimal JSON for the harness.

    The worker pool ({!Causalb_harness.Pool}) streams one JSON object per
    finished task over a pipe, and the bench harness writes the cumulative
    [BENCH_PR5.json] artifact; both sides use this module so the repo
    needs no external JSON dependency.  Numbers are [float] (integral
    values emit without a fractional part); object fields keep insertion
    order. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Compact, single-line rendering — the pipe framing of the pool is one
    object per line, so emitted strings never contain raw newlines. *)

val to_string_pretty : t -> string
(** Two-space indented rendering with a trailing newline, for artifacts
    meant to be read (and diffed) by humans. *)

val of_string : string -> t
(** @raise Parse_error on malformed input or trailing garbage. *)

(** {1 Shape accessors} *)

val member : string -> t -> t option
(** Field lookup on an object; [None] on missing field or non-object. *)

val get_string : t -> string
val get_float : t -> float
val get_int : t -> int
val get_bool : t -> bool
val get_list : t -> t list
(** @raise Parse_error when the value has a different shape. *)
