(* Redirectable output (see printer.mli).  Printer_sink is the
   version-selected slot: Domain.DLS on 5.x, a ref on 4.14. *)

let string s =
  match Printer_sink.get () with
  | None -> print_string s
  | Some b -> Buffer.add_string b s

let line s =
  string s;
  string "\n"

let newline () = string "\n"

let printf fmt = Printf.ksprintf string fmt

let redirected () = Printer_sink.get () <> None

let capture f =
  let saved = Printer_sink.get () in
  let buf = Buffer.create 1024 in
  Printer_sink.set (Some buf);
  let restore () = Printer_sink.set saved in
  match f () with
  | v ->
    restore ();
    (Buffer.contents buf, v)
  | exception e ->
    restore ();
    raise e
