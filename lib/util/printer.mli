(** Redirectable output for deterministic experiment parts.

    The fork pool captures a part's output at the file-descriptor level,
    which works because each worker is a whole process.  Worker {e
    domains} share one fd table, so the domains pool cannot dup2 its way
    to per-task capture — instead, every print site of a deterministic
    experiment part goes through this module, and the pool points the
    current domain's sink at a buffer for the duration of a task.

    With no sink installed (the default, and always the case for direct
    CLI runs and the fork pool's fd-captured workers), output goes
    straight to stdout — so the bytes a part produces are identical
    whether they were captured by dup2, by a sink, or not at all.

    The sink is domain-local on OCaml 5 ([Domain.DLS]) and a plain ref on
    4.14, via the printer_sink copy rule — same observable behaviour
    single-domain. *)

val string : string -> unit
(** [string s] writes [s] to the current domain's sink, or to stdout. *)

val line : string -> unit
(** [string s] then a newline. *)

val newline : unit -> unit

val printf : ('a, unit, string, unit) format4 -> 'a

val redirected : unit -> bool
(** Whether this domain currently has a sink installed. *)

val capture : (unit -> 'a) -> string * 'a
(** [capture f] runs [f] with this domain's sink pointed at a fresh
    buffer and returns (everything [f] printed through this module,
    result of [f]).  Restores the previous sink on exit, including on
    exceptions.  Raw [print_string]/[Printf.printf] calls inside [f]
    escape the capture — which is exactly how the byte-identity tests
    catch an unmigrated print site in a deterministic part. *)
