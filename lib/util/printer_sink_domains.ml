(* OCaml 5 sink: one slot per domain (Domain.DLS), so worker domains of
   the domains pool each capture their own task output without touching
   anyone else's.  Selected into printer_sink.ml by a dune rule when
   ocaml_version >= 5.0; the 4.14 build copies printer_sink_plain.ml
   instead. *)

let key : Buffer.t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let get () = Domain.DLS.get key

let set v = Domain.DLS.set key v
