(* Pre-5.0 sink: a plain ref.  There is exactly one domain, so a process
   global carries the same meaning Domain.DLS does on 5.x.  Selected into
   printer_sink.ml by a dune rule when ocaml_version < 5.0. *)

let sink : Buffer.t option ref = ref None

let get () = !sink

let set v = sink := v
