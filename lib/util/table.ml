type t = {
  title : string;
  columns : string list;
  mutable fixed : int list option;
      (* authoritative column widths, for part rendering *)
  mutable rows : string list list; (* reversed *)
}

let create ~title ~columns = { title; columns; fixed = None; rows = [] }

let set_widths t w =
  if List.length w <> List.length t.columns then
    invalid_arg "Table.set_widths: widths arity differs from columns";
  t.fixed <- Some w

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row: expected %d cells, got %d"
         (List.length t.columns) (List.length row));
  t.rows <- row :: t.rows

let add_rowf t fmt =
  Printf.ksprintf (fun s -> add_row t (String.split_on_char '\t' s)) fmt

let widths t =
  match t.fixed with
  | Some w -> Array.of_list w
  | None ->
    let all = t.columns :: List.rev t.rows in
    let ncols = List.length t.columns in
    let w = Array.make ncols 0 in
    let measure row =
      List.iteri (fun i cell -> w.(i) <- max w.(i) (String.length cell)) row
    in
    List.iter measure all;
    w

let pad width s = s ^ String.make (max 0 (width - String.length s)) ' '

let add_line buf w ch =
  Array.iter
    (fun width -> Buffer.add_string buf ("+" ^ String.make (width + 2) ch))
    w;
  Buffer.add_string buf "+\n"

let add_cells buf w cells =
  List.iteri
    (fun i cell -> Buffer.add_string buf (Printf.sprintf "| %s " (pad w.(i) cell)))
    cells;
  Buffer.add_string buf "|\n"

let render t =
  let w = widths t in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "== %s ==\n" t.title);
  add_line buf w '-';
  add_cells buf w t.columns;
  add_line buf w '=';
  List.iter (add_cells buf w) (List.rev t.rows);
  add_line buf w '-';
  Buffer.contents buf

(* Part rendering, for experiments sharded across worker processes: with
   fixed widths, header / rows / footer rendered separately concatenate
   to exactly [render], so independently captured chunks reassemble into
   one table. *)

let render_header t =
  let w = widths t in
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "== %s ==\n" t.title);
  add_line buf w '-';
  add_cells buf w t.columns;
  add_line buf w '=';
  Buffer.contents buf

let render_data_rows t =
  let w = widths t in
  let buf = Buffer.create 128 in
  List.iter (add_cells buf w) (List.rev t.rows);
  Buffer.contents buf

let render_footer t =
  let w = widths t in
  let buf = Buffer.create 64 in
  add_line buf w '-';
  Buffer.contents buf

(* Through Printer, so a table printed inside a worker domain lands in
   that task's capture buffer rather than on the shared stdout. *)
let print t =
  Printer.string (render t);
  Printer.newline ()

let escape_csv cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let line cells = String.concat "," (List.map escape_csv cells) in
  String.concat "\n" (line t.columns :: List.map line (List.rev t.rows))

let fmt_float ?(digits = 3) x =
  if Float.is_nan x then "-" else Printf.sprintf "%.*f" digits x

let fmt_int = string_of_int

let fmt_pct x =
  if Float.is_nan x then "-" else Printf.sprintf "%.1f%%" (100.0 *. x)
