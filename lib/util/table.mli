(** ASCII table rendering for the experiment harness.

    The benchmark binaries print paper-style tables to stdout; this module
    keeps the formatting in one place so every experiment renders rows the
    same way and the output stays diff-friendly across runs. *)

type t

val create : title:string -> columns:string list -> t
(** A table with a caption and named columns. *)

val set_widths : t -> int list -> unit
(** Fix the column widths (one entry per column): rendering then uses
    these instead of measuring content, which lets separately rendered
    parts ({!render_header}, {!render_data_rows}, {!render_footer}) line
    up when a table is assembled from chunks produced by different
    worker processes.  Cells wider than their fixed width are not
    truncated (that row just overflows).
    @raise Invalid_argument when the arity differs from [columns]. *)

val add_row : t -> string list -> unit
(** Appends a row.  @raise Invalid_argument if the arity differs from the
    column count. *)

val add_rowf : t -> ('a, unit, string, unit) format4 -> 'a
(** [add_rowf t fmt …] formats a single tab-separated string and splits it
    into cells on ['\t']. *)

val render : t -> string
(** Aligned, boxed rendering including the title. *)

val render_header : t -> string
(** Title, top rule, column row and separator only.  With fixed [widths],
    [render_header t ^ render_data_rows t ^ render_footer t = render t] —
    the contract the sharded experiments rely on. *)

val render_data_rows : t -> string
(** Just the data rows (no title, rules or column row). *)

val render_footer : t -> string
(** Just the closing rule. *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

val to_csv : t -> string
(** Comma-separated rendering (header + rows) for machine consumption. *)

(** {1 Cell formatting helpers} *)

val fmt_float : ?digits:int -> float -> string
val fmt_int : int -> string
val fmt_pct : float -> string
(** Fraction [0..1] rendered as a percentage. *)
