(* Binary wire codec primitives.  See wire.mli for the discipline; the
   implementation notes here are about allocation:

   - a [writer] appends into a Bytes scratch borrowed from its pool and
     grown by doubling, so a steady-state encode loop allocates only the
     final frame (one [Bytes.sub_string]);
   - a [frame] is a string: immutable, shareable, and free to alias
     across every recipient of a broadcast;
   - a [reader] is a 2-word cursor; decode never copies except for
     [r_str]'s payload bytes.

   Varints are LEB128: 7 value bits per byte, high bit = continuation.
   OCaml ints are 63-bit, so a varint is at most 9 bytes; the decoder
   rejects longer (or overflowing) sequences as corrupt rather than
   silently wrapping. *)

type frame = string

type writer = {
  mutable scratch : Bytes.t;
  mutable len : int;
  mutable open_ : bool;
  home : pool;
}

and pool = { mutable free : Bytes.t list }

type reader = { src : string; mutable pos : int }

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

let pool () = { free = [] }

let writer p =
  let scratch =
    match p.free with
    | b :: rest ->
      p.free <- rest;
      b
    | [] -> Bytes.create 256
  in
  { scratch; len = 0; open_ = true; home = p }

let check_open w op =
  if not w.open_ then invalid_arg ("Wire." ^ op ^ ": writer already finished")

let reserve w extra =
  let need = w.len + extra in
  if need > Bytes.length w.scratch then begin
    let cap = ref (max 8 (Bytes.length w.scratch)) in
    while !cap < need do
      cap := 2 * !cap
    done;
    let bigger = Bytes.create !cap in
    Bytes.blit w.scratch 0 bigger 0 w.len;
    w.scratch <- bigger
  end

let u8 w v =
  check_open w "u8";
  if v < 0 || v > 0xff then invalid_arg "Wire.u8: value out of byte range";
  reserve w 1;
  Bytes.unsafe_set w.scratch w.len (Char.unsafe_chr v);
  w.len <- w.len + 1

(* LEB128 of [v]'s 63-bit pattern taken as unsigned ([lsr], not [asr]),
   so zigzagged values with the top bit set — the encodings of large
   negatives — loop to termination like any other. *)
let uleb w v =
  reserve w 9;
  let n = ref v in
  let continue_ = ref true in
  while !continue_ do
    let b = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Bytes.unsafe_set w.scratch w.len (Char.unsafe_chr b);
      w.len <- w.len + 1;
      continue_ := false
    end
    else begin
      Bytes.unsafe_set w.scratch w.len (Char.unsafe_chr (b lor 0x80));
      w.len <- w.len + 1
    end
  done

let uint w v =
  check_open w "uint";
  if v < 0 then invalid_arg "Wire.uint: negative value";
  uleb w v

(* Zigzag maps ..,-2,-1,0,1,2,.. to 3,1,0,2,4,.. so small magnitudes of
   either sign encode in one byte.  The result is an unsigned 63-bit
   pattern (for [min_int] it has all bits set), hence [uleb]. *)
let int w v =
  check_open w "int";
  uleb w ((v lsl 1) lxor (v asr 62))

let str w s =
  check_open w "str";
  uint w (String.length s);
  reserve w (String.length s);
  Bytes.blit_string s 0 w.scratch w.len (String.length s);
  w.len <- w.len + String.length s

let bool_ w b = u8 w (if b then 1 else 0)

let written w =
  check_open w "written";
  w.len

let finish w =
  check_open w "finish";
  w.open_ <- false;
  let f = Bytes.sub_string w.scratch 0 w.len in
  w.home.free <- w.scratch :: w.home.free;
  f

let length = String.length

let reader f = { src = f; pos = 0 }

let remaining r = String.length r.src - r.pos

let r_u8 r =
  if r.pos >= String.length r.src then corrupt "truncated at offset %d" r.pos;
  let v = Char.code (String.unsafe_get r.src r.pos) in
  r.pos <- r.pos + 1;
  v

(* Inverse of [uleb]: at most 9 bytes (63 bits / 7); the 9th byte's
   payload lands in bits 56–62, so the full int range reconstructs and a
   10th continuation byte is corrupt, not wraparound. *)
let r_uleb r =
  let v = ref 0 and shift = ref 0 and continue_ = ref true in
  while !continue_ do
    if !shift >= 63 then corrupt "varint overflow at offset %d" r.pos;
    let b = r_u8 r in
    v := !v lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then continue_ := false
  done;
  !v

let r_uint r =
  let v = r_uleb r in
  if v < 0 then corrupt "varint overflow at offset %d" r.pos;
  v

let r_int r =
  let u = r_uleb r in
  (u lsr 1) lxor (-(u land 1))

let r_str r =
  let n = r_uint r in
  if remaining r < n then
    corrupt "truncated string (%d of %d bytes) at offset %d" (remaining r) n
      r.pos;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let r_bool r =
  match r_u8 r with
  | 0 -> false
  | 1 -> true
  | b -> corrupt "bad bool byte %d at offset %d" b (r.pos - 1)

let expect_end r =
  if remaining r > 0 then
    corrupt "%d trailing byte(s) after frame payload" (remaining r)

let to_string f = f

let of_string s = s

let prefix f n =
  if n > String.length f then invalid_arg "Wire.prefix: longer than frame";
  String.sub f 0 n
