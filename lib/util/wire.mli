(** Compact binary wire codec: the Bytes-based sibling of {!Json}.

    The hot path of the §6.1 protocol broadcasts every stamp to every
    member, so serialization cost must be paid {e once per message}, not
    once per recipient.  This module provides the primitives for that
    encode-once / decode-many discipline:

    - a {!writer} borrows a scratch buffer from a caller-owned {!pool}
      (so a steady-state broadcast loop allocates no fresh buffers),
    - {!finish} seals the scratch into an immutable {!frame} — the one
      value every recipient shares on the wire,
    - a {!reader} is a bounds-checked cursor over a frame; any read past
      the end (a truncated or corrupt frame) raises {!Corrupt} instead of
      returning garbage.

    Integers use LEB128 varints (unsigned for counters and sizes, zigzag
    for possibly-negative payload values), so a typical vector-stamp
    component costs one byte instead of the 8–20 a textual encoding pays.
    The Message/envelope codecs built on these primitives live in
    [Causalb_core.Codec] (they need [Label]/[Dep]/[Vector_clock], which
    sit above this library).

    A pool is single-owner: one pool per group, per bench loop, or per
    worker domain ("per-domain free-lists").  Pools are deliberately not
    shared behind a lock — sharing one across domains is a bug. *)

type frame
(** An immutable encoded message.  Structurally a [string], so frames can
    be shared across any number of recipients (and across domains)
    without copying or defensive ownership. *)

type pool
(** A free list of scratch buffers for encoding. *)

type writer
(** An append-only encoder over a pooled scratch buffer. *)

type reader
(** A bounds-checked decode cursor over a frame. *)

exception Corrupt of string
(** Raised by every [read_*] on truncation or malformed data, and by
    {!expect_end} on trailing bytes. *)

val pool : unit -> pool

val writer : pool -> writer
(** Borrow a scratch buffer (reusing a released one when available).
    @raise Invalid_argument if the writer of a previous [writer] call on
    this pool was never finished — writers are used one at a time. *)

val finish : writer -> frame
(** Seal the bytes written so far into a frame and return the scratch
    buffer to the pool.  The writer must not be used afterwards. *)

(** {1 Writing} *)

val u8 : writer -> int -> unit
(** One raw byte; the value must be in [0, 255]. *)

val uint : writer -> int -> unit
(** Unsigned LEB128 varint.  @raise Invalid_argument on negatives. *)

val int : writer -> int -> unit
(** Zigzag-encoded varint: small magnitudes of either sign stay short. *)

val str : writer -> string -> unit
(** Length-prefixed bytes. *)

val bool_ : writer -> bool -> unit

val written : writer -> int
(** Bytes appended so far.  Taking the mark before and after a field
    group measures its encoded span — how the framed delivery path
    splits a frame into control and payload bytes without a second
    encode.  @raise Invalid_argument after {!finish}. *)

(** {1 Reading} *)

val length : frame -> int
(** Wire size in bytes — what the transport's byte accounting and the
    bytes-per-delivery metric charge per copy. *)

val reader : frame -> reader
(** A fresh cursor at offset 0.  Readers are cheap; every recipient (or
    the one shared decode) makes its own. *)

val r_u8 : reader -> int

val r_uint : reader -> int

val r_int : reader -> int

val r_str : reader -> string

val r_bool : reader -> bool

val remaining : reader -> int

val expect_end : reader -> unit
(** @raise Corrupt if the cursor has not consumed the whole frame. *)

(** {1 Tests and diagnostics} *)

val to_string : frame -> string
(** The raw bytes (a copy-free view — frames are immutable). *)

val of_string : string -> frame
(** Wrap raw bytes as a frame, e.g. to decode a truncated prefix in
    tests. *)

val prefix : frame -> int -> frame
(** [prefix f n] is the first [n] bytes of [f] — a deliberately truncated
    frame for decoder hardening tests.
    @raise Invalid_argument if [n] exceeds [length f]. *)
