(* Tests for the static consistency verifier (lib/analysis): the
   guarantee lattice laws, the bottom-up stack verifier, the pure
   workload replay, the causal-race lint — and the qcheck cross-check
   tying the static verdict to the dynamic oracle: any configuration the
   verifier accepts must also pass the trace checkers when executed. *)

module Guarantee = Causalb_stackbase.Guarantee
module Stack = Causalb_stack.Stack
module Stack_verify = Causalb_analysis.Stack_verify
module Workload = Causalb_analysis.Workload
module Race_lint = Causalb_analysis.Race_lint
module Label = Causalb_graph.Label
module Dep = Causalb_graph.Dep
module Depgraph = Causalb_graph.Depgraph
module Dt = Causalb_data.Datatypes
module Objects = Causalb_data.Objects
module Drivers = Causalb_harness.Drivers
module Conference = Causalb_protocols.Conference
module Card_game = Causalb_protocols.Card_game
module Name_service = Causalb_protocols.Name_service

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let all_guarantees =
  Guarantee.[ Unordered; Fifo; Causal; Causal_total ]

(* --- the guarantee lattice ------------------------------------------- *)

let test_lattice_order () =
  let open Guarantee in
  check "chain" true
    (leq Unordered Fifo && leq Fifo Causal && leq Causal Causal_total);
  check "bot/top" true (equal bot Unordered && equal top Causal_total);
  List.iter
    (fun g ->
      check "reflexive" true (leq g g);
      check "bot below all" true (leq bot g);
      check "all below top" true (leq g top))
    all_guarantees;
  (* antisymmetry over the whole (finite) carrier *)
  List.iter
    (fun a ->
      List.iter
        (fun b -> if leq a b && leq b a then check "antisym" true (equal a b))
        all_guarantees)
    all_guarantees

let test_lattice_ops () =
  let open Guarantee in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check "join commutes" true (equal (join a b) (join b a));
          check "meet commutes" true (equal (meet a b) (meet b a));
          check "join is upper bound" true (leq a (join a b) && leq b (join a b));
          check "meet is lower bound" true (leq (meet a b) a && leq (meet a b) b);
          check "absorption" true
            (equal (join a (meet a b)) a && equal (meet a (join a b)) a);
          check "leq via join" true (leq a b = equal (join a b) b))
        all_guarantees)
    all_guarantees

let test_lattice_names () =
  List.iter
    (fun g ->
      check "to_string/of_string roundtrip" true
        (Guarantee.of_string (Guarantee.to_string g) = Some g))
    all_guarantees;
  check "unknown name" true (Guarantee.of_string "eventual" = None)

(* --- pass 1: the stack verifier -------------------------------------- *)

let test_verify_shipped_layers () =
  (* every shipped (ordering, total) combination composes cleanly *)
  let totals =
    [ Stack.Pass; Stack.Merge (fun _ -> true); Stack.Counted 3 ]
  in
  List.iter
    (fun ordering ->
      List.iter
        (fun total ->
          let r = Stack_verify.verify_stack ~ordering ~total ~fifo:false () in
          match (ordering, total) with
          | Stack.Fifo, Stack.Pass ->
            check "fifo tops at fifo" true
              (Guarantee.equal r.Stack_verify.top Guarantee.Fifo);
            check "fifo clean" true (Stack_verify.ok r)
          | Stack.Fifo, _ ->
            (* a total layer over fifo lacks its causal floor *)
            check "total over fifo flagged" true
              (List.exists
                 (function Stack_verify.Weak_layer _ -> true | _ -> false)
                 r.Stack_verify.issues)
          | _, Stack.Pass ->
            check "causal engines top at causal" true
              (Guarantee.equal r.Stack_verify.top Guarantee.Causal);
            check "causal clean" true (Stack_verify.ok r)
          | _, _ ->
            check "total tail tops at causal-total" true
              (Guarantee.equal r.Stack_verify.top Guarantee.Causal_total);
            check "total clean" true (Stack_verify.ok r))
        totals)
    [ Stack.Fifo; Stack.Bss; Stack.Psync; Stack.Osend ]

let test_verify_claim () =
  let layers = Stack_verify.layers_of ~ordering:Stack.Fifo ~total:Stack.Pass ~fifo:false in
  let r = Stack_verify.verify ~claim:Guarantee.Causal layers in
  check "overclaim flagged" true
    (List.exists
       (function
         | Stack_verify.Claim_unmet { claim; top } ->
           claim = Guarantee.Causal && top = Guarantee.Fifo
         | _ -> false)
       r.Stack_verify.issues);
  check "met claim clean" true
    (Stack_verify.ok (Stack_verify.verify ~claim:Guarantee.Fifo layers));
  (* an empty pipeline provides only the bottom *)
  let empty = Stack_verify.verify [] in
  check "empty pipeline bottoms out" true
    (Guarantee.equal empty.Stack_verify.top Guarantee.bot)

let test_verify_reports_every_layer () =
  (* verification continues past a weak layer: both ill-fitting layers
     must be named, not just the first *)
  let mk name requires provides =
    { Stack_verify.name; requires; provides }
  in
  let r =
    Stack_verify.verify
      [
        mk "transport" Guarantee.Unordered Guarantee.Unordered;
        mk "total:a" Guarantee.Causal Guarantee.Causal_total;
        mk "needs-fifo" Guarantee.Fifo Guarantee.Fifo;
      ]
  in
  let weak =
    List.filter_map
      (function
        | Stack_verify.Weak_layer { layer; _ } -> Some layer | _ -> None)
      r.Stack_verify.issues
  in
  check "first weak layer named" true (List.mem "total:a" weak);
  check_int "only the truly weak layers" 1 (List.length weak)

(* --- the workload replay --------------------------------------------- *)

let test_workload_of_ops () =
  let w =
    Workload.of_ops ~spec:Dt.Int_register.spec
      ~src:(fun i -> i mod 2)
      Dt.Int_register.[ Inc 1; Inc 2; Read ]
  in
  check_int "three sites" 3 (List.length w.Workload.sites);
  check_int "one sync" 1 (Label.Set.cardinal w.Workload.sync);
  let site i = List.nth w.Workload.sites i in
  check "classes derived" true
    ((site 0).Workload.cls = "inc" && (site 2).Workload.cls = "read");
  (* the §6.1 window: the read depends on both incs *)
  let parents = Depgraph.parents w.Workload.graph (site 2).Workload.label in
  check_int "read closes the window" 2 (List.length parents);
  (* conflicts: observer read vs inc, but not inc vs inc *)
  check "inc/read conflict" true (Workload.conflicts w (site 0) (site 2));
  check "inc/inc commute" false (Workload.conflicts w (site 0) (site 1));
  (* labels use the stack front-end's per-origin numbering *)
  check "per-origin seqs" true
    (Label.origin (site 0).Workload.label = 0
    && Label.origin (site 1).Workload.label = 1
    && Label.seq (site 2).Workload.label = 1)

let test_workload_of_sites_validation () =
  let g = Depgraph.create () in
  let a = Label.make ~name:"a" ~origin:0 ~seq:0 () in
  Depgraph.add g a ~dep:Dep.Null;
  let objects = [ Workload.obj_of_spec Dt.Int_register.spec ] in
  let site label obj cls = { Workload.label; obj; cls } in
  check "valid sites accepted" true
    (Workload.of_sites ~graph:g ~objects [ site a "int-register" "inc" ]
     |> fun w -> List.length w.Workload.sites = 1);
  Alcotest.check_raises "unknown label"
    (Invalid_argument "Workload.of_sites: label b missing from graph")
    (fun () ->
      ignore
        (Workload.of_sites ~graph:g ~objects
           [ site (Label.make ~name:"b" ~origin:0 ~seq:1 ()) "int-register" "inc" ]));
  Alcotest.check_raises "unknown object"
    (Invalid_argument "Workload.of_sites: unknown object \"ghost\"")
    (fun () ->
      ignore (Workload.of_sites ~graph:g ~objects [ site a "ghost" "inc" ]))

(* --- pass 2: the race lint ------------------------------------------- *)

(* Two incs from two members closed by a read from a third; [drop]
   deletes the read's R(M) edges. *)
let mini ~drop =
  let graph = Depgraph.create () in
  let l name origin = Label.make ~name ~origin ~seq:0 () in
  let a = l "inc-a" 0 and b = l "inc-b" 1 and r = l "read" 2 in
  Depgraph.add graph a ~dep:Dep.Null;
  Depgraph.add graph b ~dep:Dep.Null;
  Depgraph.add graph r
    ~dep:(if drop then Dep.Null else Dep.after_all [ a; b ]);
  let site label cls = { Workload.label; obj = "int-register"; cls } in
  Workload.of_sites ~graph
    ~sync:(Label.Set.singleton r)
    ~objects:[ Workload.obj_of_spec Dt.Int_register.spec ]
    [ site a "inc"; site b "inc"; site r "read" ]

let test_race_ordered_pair () =
  let w = mini ~drop:false in
  check "ordered workload race-free at causal" true
    (Race_lint.check ~top:Guarantee.Causal w = []);
  check "demand is causal" true
    (Guarantee.equal (Race_lint.required w) Guarantee.Causal)

let test_race_deleted_edge () =
  let w = mini ~drop:true in
  let races = Race_lint.check ~top:Guarantee.Causal w in
  check_int "both unordered pairs flagged" 2 (List.length races);
  List.iter
    (fun r ->
      check "need is causal-total" true
        (Guarantee.equal r.Race_lint.need Guarantee.Causal_total);
      check "missing edge names the pair" true
        (List.length r.Race_lint.missing = 2))
    races;
  check "demand rises to causal-total" true
    (Guarantee.equal (Race_lint.required w) Guarantee.Causal_total);
  check "a total-order stack covers it" true
    (Race_lint.check ~top:Guarantee.Causal_total w = []);
  check "diags carry the chain" true
    (List.for_all
       (fun d -> d.Causalb_check.Diag.check = "race:causal")
       (Race_lint.to_diags races))

let test_race_same_origin () =
  (* two sets from the same member: per-sender FIFO already orders them *)
  let graph = Depgraph.create () in
  let a = Label.make ~name:"s0" ~origin:0 ~seq:0 () in
  let b = Label.make ~name:"s1" ~origin:0 ~seq:1 () in
  Depgraph.add graph a ~dep:Dep.Null;
  Depgraph.add graph b ~dep:Dep.Null;
  let site label = { Workload.label; obj = "int-register"; cls = "set" } in
  let w =
    Workload.of_sites ~graph
      ~objects:[ Workload.obj_of_spec Dt.Int_register.spec ]
      [ site a; site b ]
  in
  check "need is fifo" true
    (Race_lint.pair_need w (List.nth w.Workload.sites 0)
       (List.nth w.Workload.sites 1)
    = Some Guarantee.Fifo);
  check "fifo top suffices" true (Race_lint.check ~top:Guarantee.Fifo w = []);
  check "demand is fifo" true
    (Guarantee.equal (Race_lint.required w) Guarantee.Fifo)

let test_race_sync_separation () =
  (* x and y unordered, but a sync point sits between them in R(M) *)
  let graph = Depgraph.create () in
  let l name origin = Label.make ~name ~origin ~seq:0 () in
  let x = l "x" 0 and s = l "s" 1 and y = l "y" 2 in
  Depgraph.add graph x ~dep:Dep.Null;
  Depgraph.add graph s ~dep:(Dep.after x);
  Depgraph.add graph y ~dep:(Dep.after s);
  let site label = { Workload.label; obj = "int-register"; cls = "set" } in
  let w =
    Workload.of_sites ~graph
      ~sync:(Label.Set.singleton s)
      ~objects:[ Workload.obj_of_spec Dt.Int_register.spec ]
      [ site x; site y ]
  in
  check "sync-separated pair needs only causal" true
    (Race_lint.pair_need w (List.nth w.Workload.sites 0)
       (List.nth w.Workload.sites 1)
    = Some Guarantee.Causal);
  check "causal top suffices" true
    (Race_lint.check ~top:Guarantee.Causal w = [])

let test_shipped_workloads_clean () =
  (* every shipped composition and object workload must lint clean *)
  let w = { Drivers.ops = 40; spacing = 0.5; mix = Drivers.Fixed_window 4 } in
  List.iter
    (fun spec ->
      let r = Drivers.static_audit ~replicas:3 spec w in
      check
        (Printf.sprintf "%s statically clean" (Drivers.stack_spec_name spec))
        true (Drivers.static_ok r))
    [
      Drivers.Fifo_only;
      Drivers.Bss_stack;
      Drivers.Psync_stack;
      Drivers.Osend_stack;
      Drivers.Osend_merge;
      Drivers.Osend_counted 41;
      Drivers.Osend_sequencer;
    ];
  let rounds = 6 and window = 4 and replicas = 3 in
  List.iter
    (fun (name, w) ->
      check (name ^ " race-free at causal") true
        (Race_lint.check ~top:Guarantee.Causal w = []))
    [
      ( "counter",
        Workload.of_submissions ~spec:Objects.Counter.spec
          (Drivers.counter_pipeline ~replicas ~rounds ~window ()) );
      ( "cart",
        Workload.of_submissions ~spec:Objects.Or_set.spec
          (Drivers.cart_workload ~replicas ~rounds ~window ()) );
      ( "edit",
        Workload.of_submissions ~spec:Objects.Rga.spec
          (Drivers.editing_workload ~replicas ~rounds ~window ()) );
    ]

let test_protocol_schedules () =
  (* the schedules the protocol modules export lint as the paper
     predicts: conference rides the causal service; card-game's plays
     commute (the chain serves turn-taking, not consistency); the
     name-service spontaneous mix demands causal-total — only the Fig. 4
     sequencer box covers it, the app-check box leaves pairs to the
     application's context check. *)
  let sections = 3 in
  let conference =
    Workload.of_submissions
      ~spec:(Dt.Document.spec ~sections)
      (Conference.session_schedule ~participants:3 ~sections ~annotations:24
         ~commit_every:6 (Causalb_util.Rng.create 7))
  in
  check "conference has sync points" true
    (not (Label.Set.is_empty conference.Workload.sync));
  check "conference demand at most causal" true
    (Guarantee.leq (Race_lint.required conference) Guarantee.Causal);
  check "conference race-free at causal" true
    (Race_lint.check ~top:Guarantee.Causal conference = []);
  (* same rng seed → the schedule is deterministic *)
  check "conference schedule deterministic" true
    (Conference.session_schedule ~participants:3 ~sections ~annotations:24
       ~commit_every:6 (Causalb_util.Rng.create 7)
    = Conference.session_schedule ~participants:3 ~sections ~annotations:24
        ~commit_every:6 (Causalb_util.Rng.create 7));
  let cards =
    let rows = Card_game.static_schedule ~players:3 ~rounds:4 in
    let spec = Dt.Card_table.spec in
    let obj = Workload.obj_of_spec spec in
    let graph = Depgraph.create () in
    List.iter (fun (label, dep, _, _) -> Depgraph.add graph label ~dep) rows;
    Workload.of_sites ~graph ~objects:[ obj ]
      (List.map
         (fun (label, _, _, op) ->
           {
             Workload.label;
             obj = obj.Workload.name;
             cls = spec.Causalb_data.Seq_spec.class_of op;
           })
         rows)
  in
  check "card-game demand is unordered" true
    (Guarantee.equal (Race_lint.required cards) Guarantee.Unordered);
  check "card-game race-free" true
    (Race_lint.check ~top:Guarantee.Causal cards = []);
  let ns =
    let spec = Dt.Kv_store.spec in
    let obj = Workload.obj_of_spec spec in
    let graph = Depgraph.create () in
    let seqs = Hashtbl.create 8 in
    Workload.of_sites ~graph ~objects:[ obj ]
      (List.map
         (fun (src, op) ->
           let seq = Option.value ~default:0 (Hashtbl.find_opt seqs src) in
           Hashtbl.replace seqs src (seq + 1);
           let label = Label.make ~origin:src ~seq () in
           Depgraph.add graph label ~dep:Dep.Null;
           {
             Workload.label;
             obj = obj.Workload.name;
             cls = spec.Causalb_data.Seq_spec.class_of op;
           })
         (* 4 front-ends, coprime with the 1-in-3 update stride, so
            conflicting upds really do come from different origins *)
         (Name_service.static_schedule ~front_ends:4 ~keys:2 ~ops:24))
  in
  check "name-service demands causal-total" true
    (Guarantee.equal (Race_lint.required ns) Guarantee.Causal_total);
  check "name-service clean under the sequencer box" true
    (Race_lint.check ~top:Guarantee.Causal_total ns = []);
  check "app-check box leaves pairs to the context check" true
    (Race_lint.check ~top:Guarantee.Causal ns <> [])

let test_refuse_mode () =
  (* a workload whose §6.1 intent is intact runs under `Refuse … *)
  let w = { Drivers.ops = 20; spacing = 0.5; mix = Drivers.Fixed_window 4 } in
  let r =
    Drivers.run_stack ~check:true ~on_static:`Refuse ~replicas:3
      Drivers.Osend_stack w
  in
  check "clean config executes" false r.Drivers.refused;
  check "clean config passes" true r.Drivers.checks_ok

(* --- the static/dynamic cross-check ---------------------------------- *)

(* Any configuration the static verifier accepts must also pass the
   dynamic oracle when actually executed: same seed, same workload, same
   composition.  (The reverse is not true — the static pass is the
   stronger, execution-free claim.) *)
let config_gen =
  let open QCheck2.Gen in
  let mix =
    oneof
      [
        (int_range 1 6 >|= fun k -> Drivers.Fixed_window k);
        (float_bound_inclusive 1.0 >|= fun p -> Drivers.Random p);
      ]
  in
  quad (int_range 0 6) mix (int_range 2 5) (int_range 0 9999)

(* The counted tail's threshold follows the workload size, as everywhere
   the composition is shipped ([ops] + the appended closing sync): a
   count the workload never reaches is a liveness misconfiguration, out
   of scope for the ordering verifier. *)
let spec_of_index ~ops = function
  | 0 -> Drivers.Fifo_only
  | 1 -> Drivers.Bss_stack
  | 2 -> Drivers.Psync_stack
  | 3 -> Drivers.Osend_stack
  | 4 -> Drivers.Osend_merge
  | 5 -> Drivers.Osend_counted (ops + 1)
  | _ -> Drivers.Osend_sequencer

let cross_check_prop (idx, mix, replicas, seed) =
  let ops = 20 + (seed mod 21) in
  let spec = spec_of_index ~ops idx in
  let w = { Drivers.ops; spacing = 0.7; mix } in
  let s = Drivers.static_audit ~seed ~replicas spec w in
  if not (Drivers.static_ok s) then
    QCheck2.Test.fail_reportf "static verifier rejected a shipped config: %s"
      (Drivers.stack_spec_name spec)
  else begin
    let r = Drivers.run_stack ~seed ~check:true ~replicas spec w in
    match r.Drivers.audit with
    | None -> QCheck2.Test.fail_report "no audit from ~check:true"
    | Some a ->
      a.Drivers.diagnostics = []
      && a.Drivers.lint = []
      && a.Drivers.static = []
      && r.Drivers.checks_ok
  end

let () =
  Alcotest.run "analysis"
    [
      ( "lattice",
        [
          Alcotest.test_case "order" `Quick test_lattice_order;
          Alcotest.test_case "join/meet laws" `Quick test_lattice_ops;
          Alcotest.test_case "names" `Quick test_lattice_names;
        ] );
      ( "verify",
        [
          Alcotest.test_case "shipped layer combos" `Quick
            test_verify_shipped_layers;
          Alcotest.test_case "claims" `Quick test_verify_claim;
          Alcotest.test_case "every weak layer named" `Quick
            test_verify_reports_every_layer;
        ] );
      ( "workload",
        [
          Alcotest.test_case "of_ops replay" `Quick test_workload_of_ops;
          Alcotest.test_case "of_sites validation" `Quick
            test_workload_of_sites_validation;
        ] );
      ( "races",
        [
          Alcotest.test_case "ordered pair" `Quick test_race_ordered_pair;
          Alcotest.test_case "deleted edge" `Quick test_race_deleted_edge;
          Alcotest.test_case "same origin" `Quick test_race_same_origin;
          Alcotest.test_case "sync separation" `Quick
            test_race_sync_separation;
          Alcotest.test_case "shipped workloads clean" `Quick
            test_shipped_workloads_clean;
          Alcotest.test_case "protocol schedules" `Quick
            test_protocol_schedules;
          Alcotest.test_case "refuse mode" `Quick test_refuse_mode;
        ] );
      ( "cross-check",
        [
          test ~count:40 "static accept => dynamic clean" config_gen
            cross_check_prop;
        ] );
    ]
