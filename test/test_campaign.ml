(* The fault campaign and determinism under faults.

   Two layers of guarantees:
   - same-seed replays under a nemesis schedule (partition/heal plus a
     loss/dup/jitter phase) are byte-identical and oracle-clean for
     every shipped composition, plain and framed — faults never make a
     run less reproducible;
   - the campaign machinery itself is deterministic (generation, case
     verdicts, parallel sweeps) and its planted-bug self-test finds and
     shrinks a known violation. *)

module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Trace = Causalb_sim.Trace
module Net = Causalb_net.Net
module Fault = Causalb_net.Fault
module Nemesis = Causalb_net.Nemesis
module Dep = Causalb_graph.Dep
module Bss = Causalb_core.Bss
module Psync = Causalb_core.Psync
module Group = Causalb_core.Group
module Fgroup = Causalb_core.Fgroup
module Codec = Causalb_core.Codec
module D = Causalb_harness.Drivers
module C = Causalb_harness.Campaign

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* --- same-seed determinism under faults: the stack driver ----------- *)

(* One partition/heal pair and one injected-fault phase, spanning the
   middle of a ~20ms workload. *)
let nemesis_schedule =
  [
    { Nemesis.at = 3.0; action = Nemesis.Partition [ [ 0 ]; [ 1; 2 ] ] };
    { Nemesis.at = 8.0; action = Nemesis.Heal };
    {
      Nemesis.at = 12.0;
      action =
        Nemesis.Set_fault
          (Fault.make ~drop_prob:0.3 ~dup_prob:0.2 ~jitter:2.0 ());
    };
    { Nemesis.at = 18.0; action = Nemesis.Set_fault Fault.none };
  ]

let workload = { D.ops = 40; spacing = 0.5; mix = D.Fixed_window 3 }

let all_specs =
  [
    D.Fifo_only;
    D.Bss_stack;
    D.Psync_stack;
    D.Osend_stack;
    D.Osend_merge;
    D.Osend_counted 4; (* aligned: window 3 closes each count-4 batch *)
    D.Osend_sequencer;
  ]

let render tr = Format.asprintf "%a" Trace.pp tr

let faulted_run spec =
  let r =
    D.run_stack ~seed:2026 ~check:true ~nemesis:nemesis_schedule ~replicas:3
      spec workload
  in
  let a = Option.get r.D.audit in
  (render a.D.trace, a.D.diagnostics, r.D.lost, r.D.checks_ok)

let test_stack_replay_identical () =
  List.iter
    (fun spec ->
      let name = D.stack_spec_name spec in
      let t1, d1, lost1, ok1 = faulted_run spec in
      let t2, _, lost2, _ = faulted_run spec in
      check_str (name ^ ": replayed trace byte-identical") t1 t2;
      check_int (name ^ ": replayed loss identical") lost1 lost2;
      check (name ^ ": nemesis removed copies") true (lost1 > 0);
      check (name ^ ": oracle clean under faults") true (d1 = []);
      check (name ^ ": checks pass (restricted to safety)") true ok1)
    all_specs

(* --- same-seed determinism under faults: the framed groups ----------- *)

(* The framed engines do not ride the stack driver, so they get their
   own replay harness: a traced net with the nemesis installed directly
   ([Nemesis.install_net]), plus the plain sibling group run under the
   identical seed and schedule — [Net.bcast] makes exactly the draws
   [Net.broadcast] makes, so delivered tags must agree even mid-fault. *)

let nodes = 3

let ops = 40

let schedule_ops engine f =
  for i = 0 to ops - 1 do
    Engine.schedule_at engine ~time:(0.5 *. float_of_int i) (fun () -> f i)
  done;
  Engine.run engine

let traced_net seed =
  let engine = Engine.create ~seed () in
  let trace = Trace.create () in
  let net = Net.create engine ~nodes ~latency:Latency.lan ~trace () in
  Nemesis.install_net net nemesis_schedule;
  (engine, net, trace)

let bss_framed seed =
  let engine, net, trace = traced_net seed in
  let g = Fgroup.Bss.create net ~enc:Codec.put_str ~dec:Codec.get_str () in
  schedule_ops engine (fun i ->
      Fgroup.Bss.bcast g ~src:(i mod nodes) ~tag:(Printf.sprintf "t%d" i)
        (Printf.sprintf "p%d" i));
  (render trace, List.init nodes (Fgroup.Bss.delivered_tags g))

let bss_plain seed =
  let engine, net, _ = traced_net seed in
  let g = Bss.Group.create net () in
  schedule_ops engine (fun i ->
      Bss.Group.bcast g ~src:(i mod nodes) ~tag:(Printf.sprintf "t%d" i)
        (Printf.sprintf "p%d" i));
  List.init nodes (Bss.Group.delivered_tags g)

let psync_framed seed =
  let engine, net, trace = traced_net seed in
  let g = Fgroup.Psync.create net ~enc:Codec.put_str ~dec:Codec.get_str () in
  schedule_ops engine (fun i ->
      ignore
        (Fgroup.Psync.send g ~src:(i mod nodes) ~name:(Printf.sprintf "s%d" i)
           (Printf.sprintf "p%d" i)));
  ( render trace,
    List.map
      (List.map Causalb_graph.Label.to_string)
      (Fgroup.Psync.all_delivered_orders g) )

let psync_plain seed =
  let engine, net, _ = traced_net seed in
  let g = Psync.create net () in
  schedule_ops engine (fun i ->
      ignore
        (Psync.send g ~src:(i mod nodes) ~name:(Printf.sprintf "s%d" i)
           (Printf.sprintf "p%d" i)));
  List.map
    (List.map Causalb_graph.Label.to_string)
    (Psync.all_delivered_orders g)

(* A dependency chain through rotating senders: every third message
   anchors the next two, so partitions genuinely block descendants. *)
let osend_framed seed =
  let engine, net, trace = traced_net seed in
  let g = Fgroup.Osend.create net ~enc:Codec.put_str ~dec:Codec.get_str () in
  let anchor = ref Dep.null in
  schedule_ops engine (fun i ->
      let lbl =
        Fgroup.Osend.osend g ~src:(i mod nodes)
          ~name:(Printf.sprintf "m%d" i) ~dep:!anchor
          (Printf.sprintf "p%d" i)
      in
      if i mod 3 = 0 then anchor := Dep.after lbl);
  ( render trace,
    List.map
      (List.map Causalb_graph.Label.to_string)
      (Fgroup.Osend.all_delivered_orders g) )

let osend_plain seed =
  let engine, net, _ = traced_net seed in
  let g = Group.create net () in
  let anchor = ref Dep.null in
  schedule_ops engine (fun i ->
      let lbl =
        Group.osend g ~src:(i mod nodes) ~name:(Printf.sprintf "m%d" i)
          ~dep:!anchor
          (Printf.sprintf "p%d" i)
      in
      if i mod 3 = 0 then anchor := Dep.after lbl);
  List.map
    (List.map Causalb_graph.Label.to_string)
    (Group.all_delivered_orders g)

let test_framed_replay_identical () =
  List.iter
    (fun seed ->
      let t1, o1 = bss_framed seed in
      let t2, o2 = bss_framed seed in
      check_str "bss framed: replayed trace identical" t1 t2;
      check "bss framed: replayed orders identical" true (o1 = o2);
      let t1, o1 = psync_framed seed in
      let t2, o2 = psync_framed seed in
      check_str "psync framed: replayed trace identical" t1 t2;
      check "psync framed: replayed orders identical" true (o1 = o2);
      let t1, o1 = osend_framed seed in
      let t2, o2 = osend_framed seed in
      check_str "osend framed: replayed trace identical" t1 t2;
      check "osend framed: replayed orders identical" true (o1 = o2))
    [ 11; 2026 ]

let test_framed_equals_plain_under_faults () =
  List.iter
    (fun seed ->
      let _, framed = bss_framed seed in
      check "bss framed = plain under nemesis" true (framed = bss_plain seed);
      let _, framed = psync_framed seed in
      check "psync framed = plain under nemesis" true
        (framed = psync_plain seed);
      let _, framed = osend_framed seed in
      check "osend framed = plain under nemesis" true
        (framed = osend_plain seed))
    [ 11; 2026 ]

(* --- the campaign machinery ----------------------------------------- *)

let test_generation_deterministic () =
  let a = C.generate ~base_seed:7 ~seeds:21 () in
  let b = C.generate ~base_seed:7 ~seeds:21 () in
  check "equal case lists" true (a = b);
  let specs =
    List.sort_uniq compare
      (List.map (fun c -> D.stack_spec_name c.C.spec) a)
  in
  check_int "all 8 compositions covered" 8 (List.length specs);
  let c = C.generate ~base_seed:8 ~seeds:21 () in
  check "base seed changes the cases" true (a <> c)

let test_churn_generation () =
  let cases = C.generate ~base_seed:7 ~churn:true ~seeds:6 () in
  check "churn pins the composition to pc" true
    (List.for_all (fun c -> c.C.spec = D.Pc_stack) cases);
  check "every churn case has membership events" true
    (List.for_all
       (fun c -> Causalb_net.Nemesis.has_churn c.C.nemesis)
       cases);
  (* churn cases replay identically and the generated guards keep every
     schedule well-formed: all clean on a healthy protocol *)
  List.iter
    (fun case ->
      let v1 = C.run_case case and v2 = C.run_case case in
      check "churn verdict replays identically" true (v1 = v2);
      check ("clean churn case passes: " ^ C.describe case) true v1.C.ok)
    cases

let test_run_case_deterministic () =
  List.iter
    (fun case ->
      let v1 = C.run_case case and v2 = C.run_case case in
      check "verdict replays identically" true (v1 = v2);
      check ("clean case passes: " ^ C.describe case) true v1.C.ok)
    (C.generate ~base_seed:3 ~seeds:7 ())

let test_parallel_verdicts_equal_sequential () =
  let r1 = C.run ~jobs:1 ~base_seed:5 ~seeds:8 () in
  let r2 = C.run ~jobs:3 ~base_seed:5 ~seeds:8 () in
  check "j3 verdicts = j1 verdicts" true (r1.C.verdicts = r2.C.verdicts);
  check "no failures either way" true
    (C.failures r1 = [] && C.failures r2 = [])

let test_planted_bug_found_and_shrunk () =
  (* the full self-test: plant, detect, shrink on both axes, replay *)
  check "self-test" true (C.self_test ~base_seed:42 ~log:(fun _ -> ()) ())

let test_shrink_is_minimal_and_failing () =
  (* Shrinking a planted failure must return a case that still fails
     under the same plant, with a 1-minimal nemesis schedule. *)
  let cases = C.generate ~base_seed:42 ~min_phases:1 ~seeds:7 () in
  let failing =
    List.find (fun c -> not (C.run_case ~plant:true c).C.ok) cases
  in
  let minimal, attempts = C.shrink ~plant:true failing in
  check "shrunk case still fails" true
    (not (C.run_case ~plant:true minimal).C.ok);
  check "shrinking spent runs" true (attempts > 0);
  check "ops shrank" true
    (minimal.C.workload.D.ops <= failing.C.workload.D.ops);
  (* 1-minimality: removing any surviving nemesis event makes it pass
     or is indistinguishable — the shrinker already re-verified each
     removal, so just assert the schedule is no longer than the input *)
  check "nemesis did not grow" true
    (List.length minimal.C.nemesis <= List.length failing.C.nemesis)

let () =
  Alcotest.run "campaign"
    [
      ( "replay under faults",
        [
          Alcotest.test_case "stack engines" `Quick
            test_stack_replay_identical;
          Alcotest.test_case "framed engines" `Quick
            test_framed_replay_identical;
          Alcotest.test_case "framed = plain" `Quick
            test_framed_equals_plain_under_faults;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "generation" `Quick test_generation_deterministic;
          Alcotest.test_case "churn generation" `Quick test_churn_generation;
          Alcotest.test_case "case verdicts" `Quick
            test_run_case_deterministic;
          Alcotest.test_case "parallel = sequential" `Quick
            test_parallel_verdicts_equal_sequential;
          Alcotest.test_case "planted bug" `Quick
            test_planted_bug_found_and_shrunk;
          Alcotest.test_case "shrinking" `Quick
            test_shrink_is_minimal_and_failing;
        ] );
    ]
