(* Tests for the ordering oracle (lib/check): the trace scan primitives,
   the four offline checkers on hand-built and simulated traces, the
   dependency-spec lint, and the mutation harness — every composition's
   clean trace must pass, every seeded violation must be caught. *)

module Trace = Causalb_sim.Trace
module Label = Causalb_graph.Label
module Dep = Causalb_graph.Dep
module Depgraph = Causalb_graph.Depgraph
module Diag = Causalb_check.Diag
module Trace_check = Causalb_check.Trace_check
module Spec_lint = Causalb_check.Spec_lint
module Mutate = Causalb_check.Mutate
module Drivers = Causalb_harness.Drivers

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let lbl ?name origin seq = Label.make ?name ~origin ~seq ()

(* --- trace storage primitives ---------------------------------------- *)

let test_trace_array () =
  let t = Trace.create ~capacity:2 () in
  for i = 0 to 99 do
    Trace.record t ~time:(float_of_int i) ~node:(i mod 3) ~kind:Trace.Deliver
      ~tag:(Printf.sprintf "m%d" i) ()
  done;
  check_int "length" 100 (Trace.length t);
  check_int "get 0 node" 0 (Trace.get t 0).Trace.node;
  check "get 99 tag" true ((Trace.get t 99).Trace.tag = "m99");
  let n = ref 0 in
  Trace.iter t (fun _ -> incr n);
  check_int "iter visits all" 100 !n;
  let sum = Trace.fold t ~init:0.0 ~f:(fun acc r -> acc +. r.Trace.time) in
  check "fold sums times" true (sum = 4950.0);
  check_int "events agrees" 100 (List.length (Trace.events t));
  check "get out of range" true
    (try
       ignore (Trace.get t 100);
       false
     with Invalid_argument _ -> true)

let test_deliveries_include_release () =
  let t = Trace.create () in
  Trace.record t ~time:1.0 ~node:0 ~kind:Trace.Deliver ~tag:"a" ();
  Trace.record t ~time:2.0 ~node:0 ~kind:Trace.Deliver ~tag:"b" ();
  Trace.record t ~time:3.0 ~node:0 ~kind:Trace.Release ~tag:"b" ();
  Trace.record t ~time:4.0 ~node:0 ~kind:Trace.Release ~tag:"a" ();
  (* deliveries_at surfaces both kinds: the deliver→release pairing *)
  check_int "deliver and release surfaced" 4
    (List.length (Trace.deliveries_at t 0));
  (* the application-visible order is the Release sequence when present *)
  check "delivery_order prefers releases" true
    (Trace.delivery_order t 0 = [ "b"; "a" ]);
  let t2 = Trace.create () in
  Trace.record t2 ~time:1.0 ~node:0 ~kind:Trace.Deliver ~tag:"a" ();
  check "delivery_order falls back to delivers" true
    (Trace.delivery_order t2 0 = [ "a" ])

(* --- depgraph analysis helpers ---------------------------------------- *)

let test_graph_helpers () =
  let a = lbl 0 0 and b = lbl 1 0 and c = lbl 2 0 and ghost = lbl 3 9 in
  let g = Depgraph.create () in
  Depgraph.add g a ~dep:Dep.null;
  Depgraph.add g b ~dep:(Dep.after a);
  Depgraph.add g c ~dep:(Dep.after_all [ b; ghost ]);
  check "missing_parents names the ghost" true
    (Depgraph.missing_parents g c = [ ghost ]);
  check "no missing parents for b" true (Depgraph.missing_parents g b = []);
  check "acyclic" true (Depgraph.find_cycle g = None);
  (match Depgraph.shortest_path g a c with
  | Some [ x; y; z ] ->
    check "path a->b->c" true
      (Label.equal x a && Label.equal y b && Label.equal z c)
  | _ -> Alcotest.fail "expected a 3-label path");
  check "no reverse path" true (Depgraph.shortest_path g c a = None);
  (* forward references make cycles expressible: the lint must see them *)
  let g2 = Depgraph.create () in
  let x = lbl 0 1 and y = lbl 1 1 in
  Depgraph.add g2 x ~dep:(Dep.after y);
  Depgraph.add g2 y ~dep:(Dep.after x);
  match Depgraph.find_cycle g2 with
  | Some (first :: _ :: _ as path) ->
    check "cycle closes on itself" true
      (Label.equal first (List.nth path (List.length path - 1)))
  | _ -> Alcotest.fail "expected a cycle"

(* --- checkers on hand-built traces ------------------------------------ *)

(* Two messages, b depends on a; node 0 delivers them in order, node 1
   delivers b first: the causal checker must name node 1, both records,
   and the a -> b chain. *)
let test_causal_checker () =
  let a = lbl ~name:"a" 0 0 and b = lbl ~name:"b" 1 0 in
  let g = Depgraph.create () in
  Depgraph.add g a ~dep:Dep.null;
  Depgraph.add g b ~dep:(Dep.after a);
  let t = Trace.create () in
  Trace.record t ~time:1.0 ~node:0 ~kind:Trace.Deliver ~tag:"a" ();
  Trace.record t ~time:2.0 ~node:0 ~kind:Trace.Deliver ~tag:"b" ();
  Trace.record t ~time:1.0 ~node:1 ~kind:Trace.Deliver ~tag:"b" ();
  Trace.record t ~time:2.0 ~node:1 ~kind:Trace.Deliver ~tag:"a" ();
  match Trace_check.causal ~graph:g t with
  | [ d ] ->
    check "names node 1" true (d.Diag.node = Some 1);
    check_int "both records cited" 2 (List.length d.Diag.records);
    check "chain a->b" true
      (List.map Label.name d.Diag.chain = [ "a"; "b" ])
  | ds -> Alcotest.fail (Printf.sprintf "expected 1 diag, got %d" (List.length ds))

let test_fifo_checker () =
  let a = lbl ~name:"a" 0 0 and b = lbl ~name:"b" 0 1 in
  let g = Depgraph.create () in
  Depgraph.add g a ~dep:Dep.null;
  Depgraph.add g b ~dep:Dep.null;
  let t = Trace.create () in
  Trace.record t ~time:1.0 ~node:0 ~kind:Trace.Deliver ~tag:"b" ();
  Trace.record t ~time:2.0 ~node:0 ~kind:Trace.Deliver ~tag:"a" ();
  (match Trace_check.fifo ~graph:g t with
  | [ d ] -> check "fifo diag at node 0" true (d.Diag.node = Some 0)
  | _ -> Alcotest.fail "expected exactly one fifo diag");
  let clean = Trace.create () in
  Trace.record clean ~time:1.0 ~node:0 ~kind:Trace.Deliver ~tag:"a" ();
  Trace.record clean ~time:2.0 ~node:0 ~kind:Trace.Deliver ~tag:"b" ();
  check "in-order passes" true (Trace_check.fifo ~graph:g clean = [])

let test_total_order_checker () =
  let a = lbl ~name:"a" 0 0 and b = lbl ~name:"b" 1 0 in
  let s = lbl ~name:"s" 2 0 in
  let g = Depgraph.create () in
  Depgraph.add g a ~dep:Dep.null;
  Depgraph.add g b ~dep:Dep.null;
  Depgraph.add g s ~dep:(Dep.after_all [ a; b ]);
  let rel t node tags =
    List.iteri
      (fun i tag ->
        Trace.record t ~time:(float_of_int i) ~node ~kind:Trace.Release ~tag ())
      tags
  in
  (* same window set, different interior order: windows agree, strict no *)
  let t = Trace.create () in
  rel t 0 [ "a"; "b"; "s" ];
  rel t 1 [ "b"; "a"; "s" ];
  let sync = Label.Set.singleton s in
  check "window agreement holds" true (Trace_check.total_order ~graph:g ~sync t = []);
  check "strict agreement fails" true
    (Trace_check.total_order ~strict:true ~graph:g ~sync:Label.Set.empty t <> []);
  (* an interior op past its sync: window agreement must fail *)
  let t2 = Trace.create () in
  rel t2 0 [ "a"; "b"; "s" ];
  rel t2 1 [ "a"; "s"; "b" ];
  check "migrated interior caught" true
    (Trace_check.total_order ~graph:g ~sync t2 <> [])

let test_stable_checker () =
  let mark t node tag info =
    Trace.record t ~time:1.0 ~node ~kind:Trace.Mark ~tag ~info ()
  in
  let t = Trace.create () in
  mark t 0 "stable:0" "digest=aa";
  mark t 1 "stable:0" "digest=aa";
  check "matching digests pass" true (Trace_check.stable_points t = []);
  let t2 = Trace.create () in
  mark t2 0 "stable:0" "digest=aa";
  mark t2 1 "stable:0" "digest=bb";
  match Trace_check.stable_points t2 with
  | [ d ] -> check_int "both marks cited" 2 (List.length d.Diag.records)
  | _ -> Alcotest.fail "expected one stable-point diag"

(* --- spec lint --------------------------------------------------------- *)

let test_lint () =
  let a = lbl ~name:"a" 0 0 and b = lbl ~name:"b" 1 0 in
  let c = lbl ~name:"c" 2 0 and ghost = lbl ~name:"ghost" 3 9 in
  (* clean chain: no issues *)
  let g = Depgraph.create () in
  Depgraph.add g a ~dep:Dep.null;
  Depgraph.add g b ~dep:(Dep.after a);
  Depgraph.add g c ~dep:(Dep.after b);
  check "clean spec lints clean" true (Spec_lint.lint g = []);
  (* dangling + unsatisfiable *)
  let g = Depgraph.create () in
  Depgraph.add g a ~dep:(Dep.after ghost);
  let names = List.map Spec_lint.issue_name (Spec_lint.lint g) in
  check "dangling flagged" true (List.mem "lint:dangling" names);
  check "unsatisfiable flagged" true (List.mem "lint:unsatisfiable" names);
  (* cycle *)
  let g = Depgraph.create () in
  Depgraph.add g a ~dep:(Dep.after b);
  Depgraph.add g b ~dep:(Dep.after a);
  check "cycle flagged" true
    (List.exists
       (function Spec_lint.Cycle _ -> true | _ -> false)
       (Spec_lint.lint g));
  (* redundant conjunct: c after_all [a; b] while b already requires a *)
  let g = Depgraph.create () in
  Depgraph.add g a ~dep:Dep.null;
  Depgraph.add g b ~dep:(Dep.after a);
  Depgraph.add g c ~dep:(Dep.after_all [ a; b ]);
  check "redundant edge flagged" true
    (List.exists
       (function
         | Spec_lint.Redundant_edge { ancestor; via; _ } ->
           Label.equal ancestor a && Label.equal via b
         | _ -> false)
       (Spec_lint.lint g));
  (* dead alternative: c after_any [a; b] where b happens-after a, so a
     can never be the last-missing alternative that fires *)
  let g = Depgraph.create () in
  Depgraph.add g a ~dep:Dep.null;
  Depgraph.add g b ~dep:(Dep.after a);
  Depgraph.add g c ~dep:(Dep.after_any [ a; b ]);
  check "dead alternative flagged" true
    (List.exists
       (function Spec_lint.Dead_alternative _ -> true | _ -> false)
       (Spec_lint.lint g));
  (* the "dropped edge" bug: remove a label the predicates still name *)
  let g = Depgraph.create () in
  Depgraph.add g a ~dep:Dep.null;
  Depgraph.add g b ~dep:(Dep.after a);
  Depgraph.add g c ~dep:(Dep.after b);
  check "drop_label produces issues" true
    (Spec_lint.lint (Mutate.drop_label g b) <> [])

let test_lint_sends () =
  let a = lbl ~name:"a" 0 0 and b = lbl ~name:"b" 1 0 in
  check "clean send list" true
    (Spec_lint.lint_sends [ (a, Dep.null); (b, Dep.after a) ] = []);
  (* two sends defining the same label, with the positions reported *)
  let issues =
    Spec_lint.lint_sends [ (a, Dep.null); (b, Dep.null); (a, Dep.after b) ]
  in
  check "duplicate flagged with positions" true
    (List.exists
       (function
         | Spec_lint.Duplicate_label { first = 0; second = 2; label } ->
           Label.equal label a
         | _ -> false)
       issues);
  check "stable issue name" true
    (List.mem "lint:duplicate-label" (List.map Spec_lint.issue_name issues));
  check "diag carries the label" true
    (List.exists
       (fun d ->
         d.Diag.check = "lint:duplicate-label" && d.Diag.chain = [ a ])
       (Spec_lint.to_diags issues));
  (* the surviving sends are still linted as a graph *)
  check "survivors linted" true
    (List.mem "lint:dangling"
       (List.map Spec_lint.issue_name
          (Spec_lint.lint_sends [ (a, Dep.after b) ])));
  (* a duplicate whose first definition carries the edges: dropping the
     second must not lose them *)
  let issues =
    Spec_lint.lint_sends [ (a, Dep.null); (b, Dep.after a); (b, Dep.null) ]
  in
  check "only the duplicate reported" true
    (List.for_all
       (function Spec_lint.Duplicate_label _ -> true | _ -> false)
       issues)

(* --- the simulated compositions, clean and mutated --------------------- *)

let all_specs ops =
  [
    Drivers.Fifo_only;
    Drivers.Bss_stack;
    Drivers.Psync_stack;
    Drivers.Osend_stack;
    Drivers.Osend_merge;
    Drivers.Osend_counted (ops + 1);
    Drivers.Osend_sequencer;
  ]

let audit_of ?(seed = 42) ?(replicas = 3) ?(ops = 30) ?(window = 3) spec =
  let w = { Drivers.ops; spacing = 0.5; mix = Drivers.Fixed_window window } in
  let r = Drivers.run_stack ~seed ~replicas ~check:true spec w in
  match r.Drivers.audit with
  | Some a -> (r, a)
  | None -> Alcotest.fail "check run produced no audit"

let test_compositions_pass () =
  List.iter
    (fun spec ->
      let r, a = audit_of spec in
      let name = Drivers.stack_spec_name spec in
      check (name ^ " no diagnostics") true (a.Drivers.diagnostics = []);
      check (name ^ " no lint") true (a.Drivers.lint = []);
      check (name ^ " checks_ok") true r.Drivers.checks_ok;
      check (name ^ " trace recorded") true (Trace.length a.Drivers.trace > 0))
    (all_specs 30)

let test_no_check_no_audit () =
  let w = { Drivers.ops = 10; spacing = 0.5; mix = Drivers.Fixed_window 3 } in
  let r = Drivers.run_stack ~seed:1 ~replicas:2 Drivers.Osend_stack w in
  check "audit absent by default" true (r.Drivers.audit = None)

(* Each mutator plants a violation its checker must catch; the diagnostic
   must cite the offending records by tag. *)
let test_mutations_caught () =
  let _, osend = audit_of Drivers.Osend_stack in
  let _, merge = audit_of Drivers.Osend_merge in
  let _, fifo = audit_of ~replicas:2 Drivers.Fifo_only in
  (match Mutate.reorder_causal ~graph:osend.Drivers.graph osend.Drivers.trace with
  | None -> Alcotest.fail "no causal mutation site"
  | Some (mut, ra, rb) -> (
    match Trace_check.causal ~graph:osend.Drivers.graph mut with
    | [] -> Alcotest.fail "causal checker missed the reordered delivery"
    | d :: _ ->
      let tags = List.map (fun r -> r.Trace.tag) d.Diag.records in
      check "causal diag names the swapped records" true
        (List.mem ra.Trace.tag tags || List.mem rb.Trace.tag tags)));
  (match Mutate.reorder_fifo ~graph:fifo.Drivers.graph fifo.Drivers.trace with
  | None -> Alcotest.fail "no fifo mutation site"
  | Some (mut, _, _) ->
    check "fifo checker objects" true
      (Trace_check.fifo ~graph:fifo.Drivers.graph mut <> []));
  (match Mutate.reorder_release ~graph:merge.Drivers.graph merge.Drivers.trace with
  | None -> Alcotest.fail "no release mutation site"
  | Some (mut, _, _) ->
    check "strict total-order checker objects" true
      (Trace_check.total_order ~strict:true ~graph:merge.Drivers.graph
         ~sync:Label.Set.empty mut
      <> []));
  (match
     Mutate.reorder_release ~sync:osend.Drivers.sync
       ~graph:osend.Drivers.graph osend.Drivers.trace
   with
  | None -> Alcotest.fail "no window mutation site"
  | Some (mut, _, _) ->
    check "window checker objects" true
      (Trace_check.total_order ~graph:osend.Drivers.graph
         ~sync:osend.Drivers.sync mut
      <> []));
  match Mutate.corrupt_mark merge.Drivers.trace with
  | None -> Alcotest.fail "no stable mark to corrupt"
  | Some (mut, victim) -> (
    match Trace_check.stable_points mut with
    | [] -> Alcotest.fail "stable-point checker missed the corrupt digest"
    | d :: _ ->
      check "stable diag names the mark" true
        (List.exists (fun r -> r.Trace.tag = victim.Trace.tag) d.Diag.records))

(* --- properties -------------------------------------------------------- *)

let qtest ?(count = 20) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let params_gen =
  let open QCheck2.Gen in
  int_range 8 40 >>= fun ops ->
  int_range 1 5 >>= fun window ->
  int_range 2 4 >>= fun replicas ->
  int_range 0 10_000 >|= fun seed -> (ops, window, replicas, seed)

(* Random §6.1 workloads over every composition pass every applicable
   checker — the oracle never cries wolf on a correct stack. *)
let prop_clean_workloads =
  qtest ~count:15 "random workloads pass all checkers" params_gen
    (fun (ops, window, replicas, seed) ->
      List.for_all
        (fun spec ->
          let _, a = audit_of ~seed ~replicas ~ops ~window spec in
          a.Drivers.diagnostics = [] && a.Drivers.lint = [])
        (all_specs ops))

(* One swapped delivery on a causal trace is always caught (whenever the
   trace offers an adjacent dependent pair to swap). *)
let prop_mutations_always_caught =
  qtest ~count:15 "swapped deliveries always fail" params_gen
    (fun (ops, window, replicas, seed) ->
      let _, osend = audit_of ~seed ~replicas ~ops ~window Drivers.Osend_stack in
      let _, merge = audit_of ~seed ~replicas ~ops ~window Drivers.Osend_merge in
      let causal_caught =
        match
          Mutate.reorder_causal ~graph:osend.Drivers.graph osend.Drivers.trace
        with
        | None -> true (* no adjacent dependent pair in this run *)
        | Some (mut, _, _) ->
          Trace_check.causal ~graph:osend.Drivers.graph mut <> []
      in
      let release_caught =
        match
          Mutate.reorder_release ~graph:merge.Drivers.graph merge.Drivers.trace
        with
        | None -> true
        | Some (mut, _, _) ->
          Trace_check.total_order ~strict:true ~graph:merge.Drivers.graph
            ~sync:Label.Set.empty mut
          <> []
      in
      causal_caught && release_caught)

let () =
  Alcotest.run "check"
    [
      ( "trace",
        [
          Alcotest.test_case "array storage" `Quick test_trace_array;
          Alcotest.test_case "release pairing" `Quick
            test_deliveries_include_release;
        ] );
      ("graph", [ Alcotest.test_case "analysis helpers" `Quick test_graph_helpers ]);
      ( "checkers",
        [
          Alcotest.test_case "causal" `Quick test_causal_checker;
          Alcotest.test_case "fifo" `Quick test_fifo_checker;
          Alcotest.test_case "total order" `Quick test_total_order_checker;
          Alcotest.test_case "stable points" `Quick test_stable_checker;
        ] );
      ( "lint",
        [
          Alcotest.test_case "spec issues" `Quick test_lint;
          Alcotest.test_case "send list / duplicates" `Quick test_lint_sends;
        ] );
      ( "harness",
        [
          Alcotest.test_case "compositions pass" `Quick test_compositions_pass;
          Alcotest.test_case "no audit without check" `Quick
            test_no_check_no_audit;
          Alcotest.test_case "mutations caught" `Quick test_mutations_caught;
        ] );
      ("props", [ prop_clean_workloads; prop_mutations_always_caught ]);
    ]
