(* Unit tests for logical clocks: Lamport, vector, matrix. *)

module Lamport = Causalb_clock.Lamport
module Vc = Causalb_clock.Vector_clock
module Mc = Causalb_clock.Matrix_clock

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Lamport --- *)

let test_lamport_tick () =
  let c = Lamport.zero in
  let c1 = Lamport.tick c in
  let c2 = Lamport.tick c1 in
  check_int "tick twice" 2 (Lamport.to_int c2);
  check "monotone" true (Lamport.compare c c2 < 0)

let test_lamport_receive () =
  let local = Lamport.of_int 3 and remote = Lamport.of_int 7 in
  check_int "max+1" 8 (Lamport.to_int (Lamport.receive ~local ~remote));
  check_int "symmetric" 8 (Lamport.to_int (Lamport.receive ~local:remote ~remote:local))

let test_lamport_of_int_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Lamport.of_int: negative")
    (fun () -> ignore (Lamport.of_int (-1)))

let test_lamport_clock_condition () =
  (* If event a's processing happens before b (b sees a's timestamp via
     receive), then L(a) < L(b). *)
  let a = Lamport.tick (Lamport.of_int 5) in
  let b = Lamport.receive ~local:Lamport.zero ~remote:a in
  check "clock condition" true (Lamport.compare a b < 0)

let prop ~name ~count gen p =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen p)

(* --- Vector clocks --- *)

let test_vc_create () =
  let v = Vc.create 3 in
  check_int "size" 3 (Vc.size v);
  for i = 0 to 2 do
    check_int "zero" 0 (Vc.get v i)
  done;
  Alcotest.check_raises "bad size"
    (Invalid_argument "Vector_clock.create: size must be positive") (fun () ->
      ignore (Vc.create 0))

let test_vc_tick_functional () =
  let v = Vc.create 3 in
  let v1 = Vc.tick v 1 in
  check_int "ticked" 1 (Vc.get v1 1);
  check_int "original untouched" 0 (Vc.get v 1)

let test_vc_merge_lub () =
  let a = Vc.of_array [| 1; 5; 2 |] and b = Vc.of_array [| 3; 1; 2 |] in
  let m = Vc.merge a b in
  check "lub" true (Vc.equal m (Vc.of_array [| 3; 5; 2 |]));
  check "a <= m" true (Vc.leq a m);
  check "b <= m" true (Vc.leq b m)

let test_vc_orderings () =
  let a = Vc.of_array [| 1; 0 |] in
  let b = Vc.of_array [| 1; 1 |] in
  let c = Vc.of_array [| 0; 2 |] in
  check "a < b" true (Vc.compare_causal a b = Vc.Before);
  check "b > a" true (Vc.compare_causal b a = Vc.After);
  check "a || c" true (Vc.compare_causal a c = Vc.Concurrent);
  check "a = a" true (Vc.compare_causal a a = Vc.Equal);
  check "concurrent fn" true (Vc.concurrent a c);
  check "lt strict" true (Vc.lt a b && not (Vc.lt a a))

let test_vc_receive () =
  let local = Vc.of_array [| 2; 0; 1 |] in
  let remote = Vc.of_array [| 1; 3; 0 |] in
  let v = Vc.receive ~local ~remote ~me:0 in
  check "receive merges and ticks" true (Vc.equal v (Vc.of_array [| 3; 3; 1 |]))

let test_vc_size_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Vector_clock: size mismatch")
    (fun () -> ignore (Vc.merge (Vc.create 2) (Vc.create 3)))

let test_vc_dominates_all () =
  let v = Vc.of_array [| 3; 3 |] in
  check "dominates" true
    (Vc.dominates_all v [ Vc.of_array [| 1; 2 |]; Vc.of_array [| 3; 0 |] ]);
  check "not dominates" false (Vc.dominates_all v [ Vc.of_array [| 4; 0 |] ])

let test_vc_happens_before_characterisation () =
  (* Simulate three processes: e1 at p0, then p1 receives and e2, then p2
     receives from p1 and e3.  V(e1) < V(e2) < V(e3). *)
  let p0 = Vc.tick (Vc.create 3) 0 in
  let p1 = Vc.receive ~local:(Vc.create 3) ~remote:p0 ~me:1 in
  let p2 = Vc.receive ~local:(Vc.create 3) ~remote:p1 ~me:2 in
  check "e1 < e2" true (Vc.lt p0 p1);
  check "e2 < e3" true (Vc.lt p1 p2);
  check "e1 < e3 (transitive)" true (Vc.lt p0 p2)

(* --- in-place operations: must agree with the pure ones --- *)

let test_vc_copy_independent () =
  let v = Vc.of_array [| 1; 2; 3 |] in
  let c = Vc.copy v in
  Vc.bump c 0;
  check_int "copy bumped" 2 (Vc.get c 0);
  check_int "original untouched" 1 (Vc.get v 0)

let test_vc_merge_into () =
  let a = Vc.of_array [| 1; 5; 2 |] and b = Vc.of_array [| 3; 1; 2 |] in
  let into = Vc.copy a in
  Vc.merge_into ~into b;
  check "merge_into = merge" true (Vc.equal into (Vc.merge a b));
  check "source untouched" true (Vc.equal b (Vc.of_array [| 3; 1; 2 |]))

let test_vc_receive_into () =
  let local = Vc.of_array [| 2; 0; 4 |] in
  let remote = Vc.of_array [| 1; 3; 4 |] in
  let expected = Vc.receive ~local ~remote ~me:1 in
  let l = Vc.copy local in
  Vc.receive_into ~local:l ~remote ~me:1;
  check "receive_into = receive" true (Vc.equal l expected)

let test_vc_with_component () =
  let v = Vc.of_array [| 4; 7; 1 |] in
  let w = Vc.with_component v 1 99 in
  check "swapped" true (Vc.equal w (Vc.of_array [| 4; 99; 1 |]));
  check "original untouched" true (Vc.equal v (Vc.of_array [| 4; 7; 1 |]))

(* random clock pairs of equal size *)
let vc_pair_gen =
  QCheck2.Gen.(
    int_range 1 16 >>= fun n ->
    let comp = int_range 0 50 in
    pair (array_size (return n) comp) (array_size (return n) comp))

let prop_merge_into_agrees =
  prop ~name:"merge_into agrees with merge" ~count:200 vc_pair_gen
    (fun (a, b) ->
      let va = Vc.of_array a and vb = Vc.of_array b in
      let into = Vc.copy va in
      Vc.merge_into ~into vb;
      Vc.equal into (Vc.merge va vb))

let prop_receive_into_agrees =
  prop ~name:"receive_into agrees with receive" ~count:200
    QCheck2.Gen.(pair vc_pair_gen (int_range 0 1000))
    (fun ((a, b), k) ->
      let me = k mod Array.length a in
      let local = Vc.of_array a and remote = Vc.of_array b in
      let expected = Vc.receive ~local ~remote ~me in
      let l = Vc.copy local in
      Vc.receive_into ~local:l ~remote ~me;
      Vc.equal l expected)

let prop_with_component_agrees =
  prop ~name:"with_component = functional update" ~count:200
    QCheck2.Gen.(pair vc_pair_gen (int_range 0 1000))
    (fun ((a, _), k) ->
      let i = k mod Array.length a in
      let v = Vc.of_array a in
      let w = Vc.with_component v i 123 in
      let expected = Array.copy a in
      expected.(i) <- 123;
      Vc.equal w (Vc.of_array expected) && Vc.equal v (Vc.of_array a))

let prop_bump_agrees =
  prop ~name:"bump agrees with tick" ~count:200
    QCheck2.Gen.(pair vc_pair_gen (int_range 0 1000))
    (fun ((a, _), k) ->
      let i = k mod Array.length a in
      let v = Vc.of_array a in
      let expected = Vc.tick v i in
      Vc.bump v i;
      Vc.equal v expected)

(* --- Matrix clocks --- *)

let test_mc_create () =
  let m = Mc.create 3 in
  check_int "size" 3 (Mc.size m);
  check "rows zero" true (Vc.equal (Mc.row m 1) (Vc.create 3))

let test_mc_update_row () =
  let m = Mc.create 2 in
  let m' = Mc.update_row m 1 (Vc.of_array [| 1; 4 |]) in
  check "row updated" true (Vc.equal (Mc.row m' 1) (Vc.of_array [| 1; 4 |]));
  check "original intact" true (Vc.equal (Mc.row m 1) (Vc.create 2))

let test_mc_min_vector () =
  let m = Mc.create 2 in
  let m = Mc.update_row m 0 (Vc.of_array [| 3; 1 |]) in
  let m = Mc.update_row m 1 (Vc.of_array [| 2; 5 |]) in
  check "min" true (Vc.equal (Mc.min_vector m) (Vc.of_array [| 2; 1 |]))

let test_mc_stability () =
  let m = Mc.create 3 in
  let v = Vc.of_array [| 2; 0; 0 |] in
  let m = Mc.update_row m 0 v in
  check "not stable yet" false (Mc.stable m ~event_owner:0 ~event_stamp:2);
  let m = Mc.update_row m 1 v in
  let m = Mc.update_row m 2 v in
  check "stable once all know" true (Mc.stable m ~event_owner:0 ~event_stamp:2);
  check "later event unstable" false (Mc.stable m ~event_owner:0 ~event_stamp:3)

let test_mc_merge () =
  let a = Mc.update_row (Mc.create 2) 0 (Vc.of_array [| 1; 0 |]) in
  let b = Mc.update_row (Mc.create 2) 1 (Vc.of_array [| 0; 2 |]) in
  let m = Mc.merge a b in
  check "row0" true (Vc.equal (Mc.row m 0) (Vc.of_array [| 1; 0 |]));
  check "row1" true (Vc.equal (Mc.row m 1) (Vc.of_array [| 0; 2 |]))

let () =
  Alcotest.run "clock"
    [
      ( "lamport",
        [
          Alcotest.test_case "tick" `Quick test_lamport_tick;
          Alcotest.test_case "receive" `Quick test_lamport_receive;
          Alcotest.test_case "of_int negative" `Quick test_lamport_of_int_negative;
          Alcotest.test_case "clock condition" `Quick test_lamport_clock_condition;
        ] );
      ( "vector",
        [
          Alcotest.test_case "create" `Quick test_vc_create;
          Alcotest.test_case "tick functional" `Quick test_vc_tick_functional;
          Alcotest.test_case "merge lub" `Quick test_vc_merge_lub;
          Alcotest.test_case "orderings" `Quick test_vc_orderings;
          Alcotest.test_case "receive" `Quick test_vc_receive;
          Alcotest.test_case "size mismatch" `Quick test_vc_size_mismatch;
          Alcotest.test_case "dominates_all" `Quick test_vc_dominates_all;
          Alcotest.test_case "happens-before" `Quick test_vc_happens_before_characterisation;
        ] );
      ( "vector in-place",
        [
          Alcotest.test_case "copy independent" `Quick test_vc_copy_independent;
          Alcotest.test_case "merge_into" `Quick test_vc_merge_into;
          Alcotest.test_case "receive_into" `Quick test_vc_receive_into;
          Alcotest.test_case "with_component" `Quick test_vc_with_component;
          prop_merge_into_agrees;
          prop_receive_into_agrees;
          prop_with_component_agrees;
          prop_bump_agrees;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "create" `Quick test_mc_create;
          Alcotest.test_case "update_row" `Quick test_mc_update_row;
          Alcotest.test_case "min_vector" `Quick test_mc_min_vector;
          Alcotest.test_case "stability" `Quick test_mc_stability;
          Alcotest.test_case "merge" `Quick test_mc_merge;
        ] );
    ]
