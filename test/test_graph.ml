(* Unit tests for labels, Occurs_After predicates, dependency graphs and
   causal activities. *)

module Label = Causalb_graph.Label
module Dep = Causalb_graph.Dep
module Depgraph = Causalb_graph.Depgraph
module Activity = Causalb_graph.Activity

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let l ?name origin seq = Label.make ?name ~origin ~seq ()

(* --- Label --- *)

let test_label_identity () =
  let a = l 1 2 and b = l ~name:"other" 1 2 and c = l 1 3 in
  check "name-independent equality" true (Label.equal a b);
  check "differs by seq" false (Label.equal a c);
  check "compare equal" true (Label.compare a b = 0);
  check "hash equal" true (Label.hash a = Label.hash b)

let test_label_names () =
  check "default name" true (Label.name (l 2 5) = "m2.5");
  check "explicit name" true (Label.name (l ~name:"mk" 0 0) = "mk")

let test_label_compare_order () =
  check "origin dominates" true (Label.compare (l 0 9) (l 1 0) < 0);
  check "seq within origin" true (Label.compare (l 1 0) (l 1 1) < 0)

let test_label_validation () =
  Alcotest.check_raises "negative origin"
    (Invalid_argument "Label.make: negative origin") (fun () ->
      ignore (l (-1) 0));
  Alcotest.check_raises "negative seq"
    (Invalid_argument "Label.make: negative seq") (fun () -> ignore (l 0 (-2)))

let test_label_set_map () =
  let s = Label.Set.of_list [ l 0 0; l 0 0; l 0 1 ] in
  check_int "set dedups" 2 (Label.Set.cardinal s);
  let m = Label.Map.singleton (l 1 1) "x" in
  check "map find by equal label" true
    (Label.Map.find_opt (l ~name:"alias" 1 1) m = Some "x")

(* --- Dep --- *)

let test_dep_normalisation () =
  check "empty all is null" true (Dep.equal (Dep.after_all []) Dep.null);
  check "singleton all is after" true
    (Dep.equal (Dep.after_all [ l 0 0 ]) (Dep.after (l 0 0)));
  check "empty any is null" true (Dep.equal (Dep.after_any []) Dep.null);
  check "dedup" true
    (Dep.equal (Dep.after_all [ l 0 0; l 0 0 ]) (Dep.after (l 0 0)))

let test_dep_satisfied () =
  let d = Dep.after_all [ l 0 0; l 0 1 ] in
  let delivered lbls x = List.exists (Label.equal x) lbls in
  check "null always" true (Dep.satisfied ~delivered:(delivered []) Dep.null);
  check "all missing" false (Dep.satisfied ~delivered:(delivered []) d);
  check "partial" false (Dep.satisfied ~delivered:(delivered [ l 0 0 ]) d);
  check "complete" true
    (Dep.satisfied ~delivered:(delivered [ l 0 0; l 0 1 ]) d);
  let any = Dep.after_any [ l 0 0; l 0 1 ] in
  check "any one suffices" true
    (Dep.satisfied ~delivered:(delivered [ l 0 1 ]) any);
  check "any none" false (Dep.satisfied ~delivered:(delivered []) any)

let test_dep_ancestors () =
  check_int "null" 0 (List.length (Dep.ancestors Dep.null));
  check_int "after" 1 (List.length (Dep.ancestors (Dep.after (l 0 0))));
  check_int "all" 3
    (List.length (Dep.ancestors (Dep.after_all [ l 0 0; l 0 1; l 1 0 ])))

(* --- Depgraph --- *)

(* The paper's Fig. 2 scenario: mk -> ||{mi, mi'} and later mj depends on
   both (the synchronization point). *)
let fig2_graph () =
  let mk = l ~name:"mk" 2 0 in
  let mi = l ~name:"mi" 0 0 in
  let mi' = l ~name:"mi'" 1 0 in
  let mj = l ~name:"mj" 0 1 in
  let g = Depgraph.create () in
  Depgraph.add g mk ~dep:Dep.null;
  Depgraph.add g mi ~dep:(Dep.after mk);
  Depgraph.add g mi' ~dep:(Dep.after mk);
  Depgraph.add g mj ~dep:(Dep.after_all [ mi; mi' ]);
  (g, mk, mi, mi', mj)

let test_graph_structure () =
  let g, mk, mi, mi', mj = fig2_graph () in
  check_int "size" 4 (Depgraph.size g);
  check "mem" true (Depgraph.mem g mk);
  check "roots" true (Depgraph.roots g = [ mk ]);
  check "leaves" true (Depgraph.leaves g = [ mj ]);
  check "parents of mj" true
    (List.length (Depgraph.parents g mj) = 2);
  check "children of mk" true
    (Label.Set.equal
       (Label.Set.of_list (Depgraph.children g mk))
       (Label.Set.of_list [ mi; mi' ]))

let test_graph_happens_before () =
  let g, mk, mi, mi', mj = fig2_graph () in
  check "mk -> mj transitively" true (Depgraph.happens_before g mk mj);
  check "mi || mi'" true (Depgraph.concurrent g mi mi');
  check "not mj -> mk" false (Depgraph.happens_before g mj mk);
  check "self not concurrent" false (Depgraph.concurrent g mi mi)

let test_graph_ancestors_descendants () =
  let g, mk, mi, mi', mj = fig2_graph () in
  check "ancestors of mj" true
    (Label.Set.equal (Depgraph.ancestors g mj)
       (Label.Set.of_list [ mk; mi; mi' ]));
  check "descendants of mk" true
    (Label.Set.equal (Depgraph.descendants g mk)
       (Label.Set.of_list [ mi; mi'; mj ]))

let test_graph_path_edge_cases () =
  let g = Depgraph.create () in
  let a = l ~name:"a" 0 0 and b = l ~name:"b" 0 1 in
  (* empty graph: no endpoints, no path *)
  check "empty graph has no path" true (Depgraph.shortest_path g a b = None);
  Depgraph.add g a ~dep:Dep.null;
  (* the degenerate self-path: a single-label chain, no edge needed *)
  check "self path is the singleton chain" true
    (Depgraph.shortest_path g a a = Some [ a ]);
  check "missing endpoint" true (Depgraph.shortest_path g a b = None);
  (* label defined after use: c's predicate names b before any send
     defines it — dangling until the definition catches up *)
  let c = l ~name:"c" 1 0 in
  Depgraph.add g c ~dep:(Dep.after b);
  check "forward reference dangles" true
    (Depgraph.missing_parents g c = [ b ]);
  check "no path through an undefined label" true
    (Depgraph.shortest_path g b c = None);
  Depgraph.add g b ~dep:(Dep.after a);
  check "definition resolves the dangle" true
    (Depgraph.missing_parents g c = []);
  check "path spans the late definition" true
    (Depgraph.shortest_path g a c = Some [ a; b; c ]);
  check "edges stay directed" true (Depgraph.shortest_path g c a = None);
  check "defined roots have no missing parents" true
    (Depgraph.missing_parents g a = [])

let test_graph_duplicate_and_self () =
  let g = Depgraph.create () in
  let a = l 0 0 in
  Depgraph.add g a ~dep:Dep.null;
  check "duplicate rejected" true
    (try
       Depgraph.add g a ~dep:Dep.null;
       false
     with Invalid_argument _ -> true);
  check "self-dep rejected" true
    (try
       Depgraph.add g (l 0 1) ~dep:(Dep.after (l 0 1));
       false
     with Invalid_argument _ -> true)

let test_graph_topological () =
  let g, mk, _, _, mj = fig2_graph () in
  let topo = Depgraph.topological g in
  check_int "complete" 4 (List.length topo);
  check "starts with root" true (Label.equal (List.hd topo) mk);
  check "ends with sink" true (Label.equal (List.nth topo 3) mj);
  check "valid extension" true (Depgraph.verify_sequence g topo)

let test_graph_linearizations () =
  let g, _, _, _, _ = fig2_graph () in
  let seqs = Depgraph.linearizations g in
  (* mk first, mj last, mi/mi' in either order: exactly 2. *)
  check_int "two linearizations" 2 (List.length seqs);
  check "all valid" true (List.for_all (Depgraph.verify_sequence g) seqs);
  check_int "count matches" 2 (Depgraph.count_linearizations g)

let test_graph_linearizations_factorial () =
  (* r independent messages have r! linearizations ((r+1)! bound with the
     opening message, as in the paper). *)
  let g = Depgraph.create () in
  for i = 0 to 4 do
    Depgraph.add g (l 0 i) ~dep:Dep.null
  done;
  check_int "5! sequences" 120 (Depgraph.count_linearizations g);
  check_int "limit respected" 7
    (List.length (Depgraph.linearizations ~limit:7 g))

let test_graph_sync_points () =
  let g, mk, _, _, mj = fig2_graph () in
  let sps = Depgraph.sync_points g in
  check "mk and mj are sync points" true
    (Label.Set.equal (Label.Set.of_list sps) (Label.Set.of_list [ mk; mj ]))

let test_graph_verify_sequence () =
  let g, mk, mi, mi', mj = fig2_graph () in
  check "good" true (Depgraph.verify_sequence g [ mk; mi'; mi; mj ]);
  check "bad: mj early" false (Depgraph.verify_sequence g [ mk; mi; mj; mi' ]);
  check "bad: before root" false (Depgraph.verify_sequence g [ mi; mk; mi'; mj ]);
  check "subset ok" true (Depgraph.verify_sequence g [ mk; mi ]);
  (* a sequence omitting an ancestor entirely does not violate it *)
  check "omitted ancestor ignored" true (Depgraph.verify_sequence g [ mi; mi' ])

let test_graph_restrict () =
  let g, mk, mi, mi', mj = fig2_graph () in
  let sub = Depgraph.restrict g (Label.Set.of_list [ mi; mi'; mj ]) in
  check_int "restricted size" 3 (Depgraph.size sub);
  check "mk gone" false (Depgraph.mem sub mk);
  check "mi now root" true (List.mem mi (Depgraph.roots sub));
  check "mj still depends" true (List.length (Depgraph.parents sub mj) = 2)

let test_graph_unknown_ancestor () =
  (* A predicate may name a message the graph hasn't seen; parents only
     reports present ones. *)
  let g = Depgraph.create () in
  let ghost = l 9 9 in
  let a = l 0 0 in
  Depgraph.add g a ~dep:(Dep.after ghost);
  check_int "no present parents" 0 (List.length (Depgraph.parents g a));
  check "dep preserved" true (Dep.equal (Depgraph.dep_of g a) (Dep.after ghost))

let test_graph_edges_and_dot () =
  let g, _, _, _, _ = fig2_graph () in
  check_int "edges" 4 (List.length (Depgraph.edges g));
  let dot = Depgraph.to_dot g in
  check "dot nonempty" true (String.length dot > 20)

let test_graph_not_found () =
  let g = Depgraph.create () in
  check "not found" true
    (try
       ignore (Depgraph.parents g (l 0 0));
       false
     with Not_found -> true)

(* --- Activity --- *)

let test_activity_fan_graph () =
  let m0 = l ~name:"m0" 0 0 in
  let body = [ l 1 0; l 2 0; l 3 0 ] in
  let m4 = l ~name:"m4" 0 1 in
  let act = Activity.fan ~opening:m0 ~closing:m4 ~body () in
  let g = Activity.graph act in
  check_int "size" 5 (Depgraph.size g);
  check "m0 root" true (Depgraph.roots g = [ m0 ]);
  check "m4 leaf" true (Depgraph.leaves g = [ m4 ]);
  check_int "members" 5 (List.length (Activity.members act));
  (* 3 concurrent interior messages -> 3! = 6 sequences *)
  check_int "3! sequences" 6 (Depgraph.count_linearizations g)

let test_activity_transition_preserving_commutative () =
  (* Increments commute: any interleaving reaches the same sum. *)
  let body = [ l 1 0; l 2 0; l 3 0 ] in
  let act = Activity.fan ~opening:(l 0 0) ~closing:(l 0 1) ~body () in
  let apply s lbl = s + Label.origin lbl in
  check "stable point" true
    (Activity.is_stable_point ~apply ~equal:Int.equal ~init:0 act)

let test_activity_not_transition_preserving () =
  (* Overwrites do not commute: final state depends on order. *)
  let body = [ l 1 0; l 2 0 ] in
  let act = Activity.fan ~opening:(l 0 0) ~closing:(l 0 1) ~body () in
  let apply s lbl = if Label.origin lbl = 0 then s else Label.origin lbl in
  check "not stable" false
    (Activity.is_stable_point ~apply ~equal:Int.equal ~init:0 act);
  let finals =
    Activity.final_states ~apply ~equal:Int.equal ~init:0 (Activity.graph act)
  in
  check_int "two distinct finals" 2 (List.length finals)

let test_activity_empty_body () =
  let act = Activity.fan ~opening:(l 0 0) ~closing:(l 0 1) ~body:[] () in
  let g = Activity.graph act in
  check_int "chain of two" 2 (Depgraph.size g);
  check_int "one sequence" 1 (Depgraph.count_linearizations g);
  check "trivially stable" true
    (Activity.is_stable_point ~apply:(fun s _ -> s + 1) ~equal:Int.equal
       ~init:0 act)

let test_activity_no_opening () =
  let act = Activity.fan ~body:[ l 0 0; l 1 0 ] () in
  let g = Activity.graph act in
  check_int "both roots" 2 (List.length (Depgraph.roots g))

(* --- Infer --- *)

module Infer = Causalb_graph.Infer

let test_infer_exact_from_all_linearizations () =
  let g, _, _, _, _ = fig2_graph () in
  let observations = Depgraph.linearizations g in
  let inferred = Infer.infer observations in
  check "exact recovery" true (Infer.exact ~truth:g inferred);
  check "sound" true (Infer.over_approximation ~truth:g inferred)

let test_infer_single_observation_is_chain () =
  let g, _, _, _, _ = fig2_graph () in
  let one = [ Depgraph.topological g ] in
  let inferred = Infer.infer one in
  (* a single total order infers a chain: still sound, not exact *)
  check "sound" true (Infer.over_approximation ~truth:g inferred);
  check "not exact" false (Infer.exact ~truth:g inferred);
  check_int "chain has n-1 direct edges" 3
    (List.length (Depgraph.edges inferred))

let test_infer_monotone_improvement () =
  let g, _, _, _, _ = fig2_graph () in
  let seqs = Depgraph.linearizations g in
  let closure gr =
    List.length
      (List.concat_map
         (fun a ->
           List.filter (Depgraph.happens_before gr a) (Depgraph.labels gr))
         (Depgraph.labels gr))
  in
  let with_one = Infer.infer [ List.hd seqs ] in
  let with_all = Infer.infer seqs in
  check "more observations, fewer constraints" true
    (closure with_all <= closure with_one)

let test_infer_precedence_partial_observations () =
  (* sequences over different subsets still combine *)
  let a = l 0 0 and b = l 1 0 and c = l 2 0 in
  let pairs = Infer.precedence [ [ a; b ]; [ b; c ] ] in
  check "a<b kept" true (List.exists (fun (x, y) -> Label.equal x a && Label.equal y b) pairs);
  check "b<c kept" true (List.exists (fun (x, y) -> Label.equal x b && Label.equal y c) pairs);
  (* a and c never co-occur: no pair *)
  check "a,c unordered" false
    (List.exists
       (fun (x, y) ->
         (Label.equal x a && Label.equal y c)
         || (Label.equal x c && Label.equal y a))
       pairs)

let test_infer_conflicting_orders_means_concurrent () =
  let a = l 0 0 and b = l 1 0 in
  let pairs = Infer.precedence [ [ a; b ]; [ b; a ] ] in
  check_int "no precedence survives" 0 (List.length pairs)

let test_infer_duplicate_rejected () =
  let a = l 0 0 in
  check "duplicate" true
    (try
       ignore (Infer.precedence [ [ a; a ] ]);
       false
     with Invalid_argument _ -> true)

let test_transitive_reduction () =
  let g = Depgraph.create () in
  let a = l 0 0 and b = l 1 0 and c = l 2 0 in
  Depgraph.add g a ~dep:Dep.null;
  Depgraph.add g b ~dep:(Dep.after a);
  (* c depends on both a and b, but a -> b makes the a edge redundant *)
  Depgraph.add g c ~dep:(Dep.after_all [ a; b ]);
  let r = Infer.transitive_reduction g in
  check_int "redundant edge dropped" 2 (List.length (Depgraph.edges r));
  check "semantics preserved" true (Infer.exact ~truth:g r)

let test_infer_spec_rendering () =
  let g, _, _, _, _ = fig2_graph () in
  let spec = Infer.spec g in
  check_int "four entries" 4 (List.length spec);
  (* first entry in topological order is the root with no constraint *)
  match spec with
  | (first, dep) :: _ ->
    check "root first" true (Label.name first = "mk");
    check "root unconstrained" true (Dep.equal dep Dep.null)
  | [] -> Alcotest.fail "empty spec"

let () =
  Alcotest.run "graph"
    [
      ( "label",
        [
          Alcotest.test_case "identity" `Quick test_label_identity;
          Alcotest.test_case "names" `Quick test_label_names;
          Alcotest.test_case "compare order" `Quick test_label_compare_order;
          Alcotest.test_case "validation" `Quick test_label_validation;
          Alcotest.test_case "set/map" `Quick test_label_set_map;
        ] );
      ( "dep",
        [
          Alcotest.test_case "normalisation" `Quick test_dep_normalisation;
          Alcotest.test_case "satisfied" `Quick test_dep_satisfied;
          Alcotest.test_case "ancestors" `Quick test_dep_ancestors;
        ] );
      ( "depgraph",
        [
          Alcotest.test_case "structure" `Quick test_graph_structure;
          Alcotest.test_case "happens-before" `Quick test_graph_happens_before;
          Alcotest.test_case "ancestors/descendants" `Quick
            test_graph_ancestors_descendants;
          Alcotest.test_case "duplicate/self" `Quick test_graph_duplicate_and_self;
          Alcotest.test_case "path edge cases" `Quick
            test_graph_path_edge_cases;
          Alcotest.test_case "topological" `Quick test_graph_topological;
          Alcotest.test_case "linearizations" `Quick test_graph_linearizations;
          Alcotest.test_case "factorial growth" `Quick
            test_graph_linearizations_factorial;
          Alcotest.test_case "sync points" `Quick test_graph_sync_points;
          Alcotest.test_case "verify sequence" `Quick test_graph_verify_sequence;
          Alcotest.test_case "restrict" `Quick test_graph_restrict;
          Alcotest.test_case "unknown ancestor" `Quick test_graph_unknown_ancestor;
          Alcotest.test_case "edges/dot" `Quick test_graph_edges_and_dot;
          Alcotest.test_case "not found" `Quick test_graph_not_found;
        ] );
      ( "infer",
        [
          Alcotest.test_case "exact from all linearizations" `Quick
            test_infer_exact_from_all_linearizations;
          Alcotest.test_case "single observation" `Quick
            test_infer_single_observation_is_chain;
          Alcotest.test_case "monotone improvement" `Quick
            test_infer_monotone_improvement;
          Alcotest.test_case "partial observations" `Quick
            test_infer_precedence_partial_observations;
          Alcotest.test_case "conflicts = concurrent" `Quick
            test_infer_conflicting_orders_means_concurrent;
          Alcotest.test_case "duplicate rejected" `Quick
            test_infer_duplicate_rejected;
          Alcotest.test_case "transitive reduction" `Quick
            test_transitive_reduction;
          Alcotest.test_case "spec rendering" `Quick test_infer_spec_rendering;
        ] );
      ( "activity",
        [
          Alcotest.test_case "fan graph" `Quick test_activity_fan_graph;
          Alcotest.test_case "commutative stable" `Quick
            test_activity_transition_preserving_commutative;
          Alcotest.test_case "non-commutative unstable" `Quick
            test_activity_not_transition_preserving;
          Alcotest.test_case "empty body" `Quick test_activity_empty_body;
          Alcotest.test_case "no opening" `Quick test_activity_no_opening;
        ] );
    ]
