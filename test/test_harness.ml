(* Tests for the experiment harness drivers: the quantitative claims in
   EXPERIMENTS.md rest on these being correct and deterministic. *)

module Drivers = Causalb_harness.Drivers
module Stats = Causalb_util.Stats

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let small = { Drivers.ops = 60; spacing = 0.5; mix = Drivers.Random 0.9 }

let test_causal_driver_sound () =
  let r = Drivers.run_causal ~seed:5 ~replicas:4 small in
  check "checks ok" true r.Drivers.checks_ok;
  (* ops+1 submissions × 4 replicas deliveries *)
  check_int "delivery samples" ((small.Drivers.ops + 1) * 4)
    (Stats.count r.Drivers.delivery);
  check "cycles closed" true (r.Drivers.cycles > 0);
  check "positive makespan" true (r.Drivers.sim_time > 0.0)

let test_merge_driver_sound () =
  let r = Drivers.run_merge ~seed:5 ~replicas:4 small in
  check "identical total orders" true r.Drivers.checks_ok;
  check_int "all released everywhere" ((small.Drivers.ops + 1) * 4)
    (Stats.count r.Drivers.delivery)

let test_sequencer_driver_sound () =
  let r = Drivers.run_sequencer ~seed:5 ~replicas:4 small in
  check "identical orders" true r.Drivers.checks_ok;
  check_int "all delivered" ((small.Drivers.ops + 1) * 4)
    (Stats.count r.Drivers.delivery)

let test_timestamp_driver_sound () =
  let r = Drivers.run_timestamp ~seed:5 ~replicas:4 small in
  check "identical orders" true r.Drivers.checks_ok;
  check_int "all delivered" ((small.Drivers.ops + 1) * 4)
    (Stats.count r.Drivers.delivery)

let test_drivers_deterministic () =
  let a = Drivers.run_causal ~seed:9 ~replicas:3 small in
  let b = Drivers.run_causal ~seed:9 ~replicas:3 small in
  check "same mean" true
    (Stats.mean a.Drivers.delivery = Stats.mean b.Drivers.delivery);
  check "same messages" true (a.Drivers.messages = b.Drivers.messages);
  let c = Drivers.run_causal ~seed:10 ~replicas:3 small in
  check "different seed differs" true
    (Stats.mean a.Drivers.delivery <> Stats.mean c.Drivers.delivery)

let test_headline_ordering_holds () =
  (* the T1 headline on a small instance: causal < both total orders *)
  let causal = Drivers.run_causal ~seed:11 ~replicas:5 small in
  let seq = Drivers.run_sequencer ~seed:11 ~replicas:5 small in
  let merge = Drivers.run_merge ~seed:11 ~replicas:5 small in
  let m (r : Drivers.result) = Stats.mean r.Drivers.delivery in
  check "causal < sequencer" true (m causal < m seq);
  check "causal < merge" true (m causal < m merge)

let test_fixed_window_cycles () =
  (* Fixed_window k: ops/(k+1) syncs (+ the appended closer) *)
  let w = { Drivers.ops = 60; spacing = 0.5; mix = Drivers.Fixed_window 5 } in
  let r = Drivers.run_causal ~seed:13 ~replicas:3 w in
  check "checks ok" true r.Drivers.checks_ok;
  check_int "cycles = 60/6 + closer" 11 r.Drivers.cycles

let test_fixed_window_zero_is_all_sync () =
  let w = { Drivers.ops = 20; spacing = 0.5; mix = Drivers.Fixed_window 0 } in
  let r = Drivers.run_causal ~seed:15 ~replicas:3 w in
  check_int "every op a stable point" 21 r.Drivers.cycles

(* --- the stack driver --- *)

let windowed = { Drivers.ops = 48; spacing = 0.5; mix = Drivers.Fixed_window 5 }

(* The acceptance shape of the stack refactor: ONE workload over every
   composition, every run passing its checks and reporting the uniform
   per-layer table. *)
let test_run_stack_all_compositions_sound () =
  List.iter
    (fun spec ->
      let r = Drivers.run_stack ~seed:21 ~replicas:4 spec windowed in
      let name = Drivers.stack_spec_name spec in
      check (name ^ " checks ok") true r.Drivers.checks_ok;
      check (name ^ " has layers") true (List.length r.Drivers.layers >= 2);
      check
        (name ^ " positive makespan")
        true (r.Drivers.sim_time > 0.0))
    [
      Drivers.Fifo_only;
      Drivers.Bss_stack;
      Drivers.Psync_stack;
      Drivers.Osend_stack;
      Drivers.Osend_merge;
      Drivers.Osend_counted (windowed.Drivers.ops + 1);
      Drivers.Osend_sequencer;
    ]

(* Same seed, same causal traffic: every broadcast-based composition puts
   the identical number of copies on the wire, and the three with an
   OSend causal layer force the identical number of waits there. *)
let test_run_stack_same_wire_cost () =
  let specs =
    [
      Drivers.Fifo_only;
      Drivers.Bss_stack;
      Drivers.Osend_stack;
      Drivers.Osend_merge;
    ]
  in
  let results =
    List.map (fun s -> Drivers.run_stack ~seed:23 ~replicas:4 s windowed) specs
  in
  let msgs =
    List.map (fun (r : Drivers.stack_result) -> r.Drivers.messages) results
  in
  check "identical wire cost" true (List.for_all (( = ) (List.hd msgs)) msgs);
  let osend = Drivers.run_stack ~seed:23 ~replicas:4 Drivers.Osend_stack windowed in
  let merge = Drivers.run_stack ~seed:23 ~replicas:4 Drivers.Osend_merge windowed in
  check_int "merge adds no causal waits" osend.Drivers.buffered
    merge.Drivers.buffered

let test_run_stack_deterministic () =
  let a = Drivers.run_stack ~seed:27 ~replicas:3 Drivers.Osend_merge windowed in
  let b = Drivers.run_stack ~seed:27 ~replicas:3 Drivers.Osend_merge windowed in
  check "same mean" true
    (Stats.mean a.Drivers.delivery = Stats.mean b.Drivers.delivery);
  check_int "same messages" a.Drivers.messages b.Drivers.messages;
  check_int "same waits" a.Drivers.buffered b.Drivers.buffered

let test_run_stack_layer_accounting () =
  let r = Drivers.run_stack ~seed:29 ~replicas:4 Drivers.Osend_merge windowed in
  (match r.Drivers.layers with
  | [ transport; causal; total ] ->
    Alcotest.(check string) "bottom" "transport"
      transport.Causalb_stackbase.Metrics.name;
    Alcotest.(check string) "middle" "causal:osend"
      causal.Causalb_stackbase.Metrics.name;
    Alcotest.(check string) "top" "total:merge"
      total.Causalb_stackbase.Metrics.name;
    (* every submission reaches every replica through every layer *)
    check_int "transport delivered" ((windowed.Drivers.ops + 1) * 4)
      transport.Causalb_stackbase.Metrics.delivered;
    check_int "causal delivered" ((windowed.Drivers.ops + 1) * 4)
      causal.Causalb_stackbase.Metrics.delivered;
    check_int "total released" ((windowed.Drivers.ops + 1) * 4)
      total.Causalb_stackbase.Metrics.delivered
  | l -> Alcotest.failf "expected 3 layers, got %d" (List.length l))

let () =
  Alcotest.run "harness"
    [
      ( "drivers",
        [
          Alcotest.test_case "causal sound" `Quick test_causal_driver_sound;
          Alcotest.test_case "merge sound" `Quick test_merge_driver_sound;
          Alcotest.test_case "sequencer sound" `Quick test_sequencer_driver_sound;
          Alcotest.test_case "timestamp sound" `Quick test_timestamp_driver_sound;
          Alcotest.test_case "deterministic" `Quick test_drivers_deterministic;
          Alcotest.test_case "headline ordering" `Quick
            test_headline_ordering_holds;
          Alcotest.test_case "fixed window cycles" `Quick test_fixed_window_cycles;
          Alcotest.test_case "fixed window 0" `Quick
            test_fixed_window_zero_is_all_sync;
        ] );
      ( "stack driver",
        [
          Alcotest.test_case "all compositions sound" `Quick
            test_run_stack_all_compositions_sound;
          Alcotest.test_case "same wire cost" `Quick
            test_run_stack_same_wire_cost;
          Alcotest.test_case "deterministic" `Quick
            test_run_stack_deterministic;
          Alcotest.test_case "layer accounting" `Quick
            test_run_stack_layer_accounting;
        ] );
    ]
