(* Unit tests for the simulated network: delivery, FIFO links, faults,
   partitions, accounting. *)

module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Net = Causalb_net.Net
module Fault = Causalb_net.Fault

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let make ?(nodes = 3) ?latency ?fifo ?fault () =
  let e = Engine.create () in
  let net = Net.create e ~nodes ?latency ?fifo ?fault () in
  (e, net)

let collect net node =
  let log = ref [] in
  Net.set_handler net node (fun ~src payload -> log := (src, payload) :: !log);
  fun () -> List.rev !log

let test_unicast () =
  let e, net = make () in
  let got = collect net 1 in
  Net.send net ~src:0 ~dst:1 "hello";
  Engine.run e;
  Alcotest.(check (list (pair int string))) "received" [ (0, "hello") ] (got ());
  check_int "sent" 1 (Net.messages_sent net);
  check_int "delivered" 1 (Net.messages_delivered net)

let test_unicast_latency_positive () =
  let e, net = make ~latency:(Latency.constant 2.5) () in
  let when_ = ref 0.0 in
  Net.set_handler net 1 (fun ~src:_ _ -> when_ := Engine.now e);
  Net.send net ~src:0 ~dst:1 ();
  Engine.run e;
  Alcotest.(check (float 1e-9)) "constant delay" 2.5 !when_

let test_broadcast_all () =
  let e, net = make ~nodes:4 () in
  let got = Array.init 4 (fun i -> collect net i) in
  Net.broadcast net ~src:2 "b";
  Engine.run e;
  Array.iteri
    (fun i g ->
      check (Printf.sprintf "node %d got it" i) true (g () = [ (2, "b") ]))
    got

let test_broadcast_no_self () =
  let e, net = make ~nodes:3 () in
  let got = collect net 0 in
  Net.broadcast net ~src:0 ~self:false "b";
  Engine.run e;
  check "sender skipped" true (got () = [])

let test_broadcast_self_immediate () =
  let e, net = make ~nodes:3 () in
  let self_time = ref (-1.0) in
  Net.set_handler net 0 (fun ~src:_ _ -> self_time := Engine.now e);
  Net.broadcast net ~src:0 "b";
  Engine.run e;
  Alcotest.(check (float 1e-9)) "self copy at now" 0.0 !self_time

let test_no_handler_counts_dropped () =
  let e, net = make () in
  Net.send net ~src:0 ~dst:1 "x";
  Engine.run e;
  check_int "dropped" 1 (Net.messages_dropped net);
  check_int "not delivered" 0 (Net.messages_delivered net)

let test_fifo_link_order () =
  (* High-variance latency would reorder; FIFO mode must prevent it on a
     single link. *)
  let e, net =
    make ~latency:(Latency.lognormal ~mu:1.0 ~sigma:2.0 ()) ~fifo:true ()
  in
  let got = collect net 1 in
  for i = 0 to 49 do
    Net.send net ~src:0 ~dst:1 i
  done;
  Engine.run e;
  let payloads = List.map snd (got ()) in
  check "in order" true (payloads = List.init 50 Fun.id)

let test_non_fifo_can_reorder () =
  let e, net =
    make ~latency:(Latency.lognormal ~mu:1.0 ~sigma:2.0 ()) ~fifo:false ()
  in
  let got = collect net 1 in
  for i = 0 to 49 do
    Net.send net ~src:0 ~dst:1 i
  done;
  Engine.run e;
  let payloads = List.map snd (got ()) in
  check_int "all arrive" 50 (List.length payloads);
  check "reordered" true (payloads <> List.init 50 Fun.id)

let test_drop_fault () =
  let e, net = make ~fault:(Fault.make ~drop_prob:1.0 ()) () in
  let got = collect net 1 in
  for _ = 1 to 10 do
    Net.send net ~src:0 ~dst:1 ()
  done;
  Engine.run e;
  check "all lost" true (got () = []);
  check_int "dropped" 10 (Net.messages_dropped net)

let test_dup_fault () =
  let e, net = make ~fault:(Fault.make ~dup_prob:1.0 ()) () in
  let got = collect net 1 in
  Net.send net ~src:0 ~dst:1 ();
  Engine.run e;
  check_int "duplicated" 2 (List.length (got ()))

let test_partial_drop_statistics () =
  let e, net = make ~fault:(Fault.make ~drop_prob:0.5 ()) () in
  let got = collect net 1 in
  for _ = 1 to 1000 do
    Net.send net ~src:0 ~dst:1 ()
  done;
  Engine.run e;
  let n = List.length (got ()) in
  check "roughly half" true (n > 400 && n < 600)

let test_partition_and_heal () =
  let e, net = make ~nodes:4 () in
  let got3 = collect net 3 in
  let got1 = collect net 1 in
  Net.partition net [ [ 0; 1 ]; [ 2; 3 ] ];
  Net.send net ~src:0 ~dst:3 "blocked";
  Net.send net ~src:0 ~dst:1 "ok";
  Engine.run e;
  check "cross-cell dropped" true (got3 () = []);
  check "same-cell delivered" true (got1 () = [ (0, "ok") ]);
  Net.heal net;
  Net.send net ~src:0 ~dst:3 "after-heal";
  Engine.run e;
  check "healed" true (got3 () = [ (0, "after-heal") ])

let test_partition_unlisted_singleton () =
  let e, net = make ~nodes:3 () in
  let got2 = collect net 2 in
  Net.partition net [ [ 0; 1 ] ];
  Net.send net ~src:0 ~dst:2 "x";
  Engine.run e;
  check "singleton isolated" true (got2 () = [])

let test_bytes_accounting () =
  let e, net = make () in
  Net.set_handler net 1 (fun ~src:_ _ -> ());
  Net.send net ~src:0 ~dst:1 ~size:100 ();
  Net.send net ~src:0 ~dst:1 ~size:20 ();
  Engine.run e;
  check_int "bytes" 120 (Net.bytes_sent net)

let test_self_broadcast_bytes () =
  (* Every copy of a self-inclusive broadcast travels the same wire
     accounting — the sender's own copy included.  4 nodes x size 10 =
     40 bytes, not 30 (the PR 8 under-report this pins against). *)
  let e, net = make ~nodes:4 () in
  for i = 0 to 3 do
    Net.set_handler net i (fun ~src:_ _ -> ())
  done;
  Net.broadcast net ~src:0 ~size:10 ();
  Engine.run e;
  check_int "bytes charge the self copy" 40 (Net.bytes_sent net);
  check_int "all four copies counted sent" 4 (Net.messages_sent net);
  check_int "all four copies delivered" 4 (Net.messages_delivered net);
  (* excluding the sender drops exactly one copy's bytes *)
  let e2, net2 = make ~nodes:4 () in
  for i = 0 to 3 do
    Net.set_handler net2 i (fun ~src:_ _ -> ())
  done;
  Net.broadcast net2 ~src:0 ~self:false ~size:10 ();
  Engine.run e2;
  check_int "no-self bytes" 30 (Net.bytes_sent net2)

let test_partition_duplicate_membership_rejected () =
  let _, net = make ~nodes:4 () in
  check "duplicate across cells rejected" true
    (try
       Net.partition net [ [ 0; 1 ]; [ 1; 2 ] ];
       false
     with Invalid_argument _ -> true);
  check "duplicate within a cell rejected" true
    (try
       Net.partition net [ [ 0; 0 ]; [ 1 ] ];
       false
     with Invalid_argument _ -> true);
  (* the rejected assignments must not have partitioned anything *)
  let e = Net.engine net in
  let got = collect net 3 in
  Net.send net ~src:0 ~dst:3 "still connected";
  Engine.run e;
  check "net unchanged after rejection" true
    (got () = [ (0, "still connected") ])

let test_dropped_by_cause () =
  (* One drop of each cause; [messages_dropped] stays their sum. *)
  let e, net = make ~nodes:4 () in
  Net.set_handler net 1 (fun ~src:_ _ -> ());
  Net.set_handler net 3 (fun ~src:_ _ -> ());
  Net.partition net [ [ 0; 1 ]; [ 2; 3 ] ];
  Net.send net ~src:0 ~dst:3 "partitioned";
  Net.heal net;
  Net.send net ~src:0 ~dst:2 "no handler";
  Net.set_fault net (Fault.make ~drop_prob:1.0 ());
  Net.send net ~src:0 ~dst:1 "lossy";
  Engine.run e;
  check_int "partition drops" 1 (Net.dropped_by_partition net);
  check_int "injected-loss drops" 1 (Net.dropped_by_loss net);
  check_int "no-handler drops" 1 (Net.dropped_no_handler net);
  check_int "sum" 3 (Net.messages_dropped net);
  (* lost_copies excludes the no-handler case: the copy arrived *)
  check_int "lost on the wire" 2 (Net.lost_copies net)

let test_jitter_delays () =
  let e, net =
    make ~latency:(Latency.constant 1.0)
      ~fault:(Fault.make ~jitter:5.0 ())
      ~fifo:false ()
  in
  let times = ref [] in
  Net.set_handler net 1 (fun ~src:_ _ -> times := Engine.now e :: !times);
  for _ = 1 to 100 do
    Net.send net ~src:0 ~dst:1 ()
  done;
  Engine.run e;
  check "some jitter beyond base" true (List.exists (fun t -> t > 1.5) !times);
  check "all >= base" true (List.for_all (fun t -> t >= 1.0) !times)

let test_invalid_args () =
  let e = Engine.create () in
  check "nodes <= 0" true
    (try
       ignore (Net.create e ~nodes:0 () : unit Net.t);
       false
     with Invalid_argument _ -> true);
  let net : unit Net.t = Net.create e ~nodes:2 () in
  check "bad dst" true
    (try
       Net.send net ~src:0 ~dst:5 ();
       false
     with Invalid_argument _ -> true)

let test_determinism_same_seed () =
  let run () =
    let e = Engine.create ~seed:7 () in
    let net = Net.create e ~nodes:3 ~latency:Latency.lan ~fifo:false () in
    let log = ref [] in
    for node = 0 to 2 do
      Net.set_handler net node (fun ~src payload ->
          log := (node, src, payload, Engine.now e) :: !log)
    done;
    for i = 0 to 20 do
      Net.broadcast net ~src:(i mod 3) i
    done;
    Engine.run e;
    !log
  in
  check "identical delivery schedule" true (run () = run ())

(* The PR 10 regression: a heal only clears partition cells, so it must
   never resurrect an endpoint removed by [remove_node] — departure wins
   over every later membership event. *)
let test_departed_survives_heal () =
  let e, net = make ~nodes:4 () in
  let got2 = collect net 2 in
  Net.remove_node net 2;
  Net.partition net [ [ 0; 1 ]; [ 2; 3 ] ];
  Net.send net ~src:0 ~dst:2 "during partition";
  Net.heal net;
  Net.send net ~src:0 ~dst:2 "after heal";
  Net.send net ~src:2 ~dst:0 "from the dead";
  Engine.run e;
  check "departed endpoint stays silent" true (got2 () = []);
  check "departed flag persists across heal" true (Net.is_departed net 2);
  (* all three copies were departure drops: the partition never saw
     them (departure wins), and the heal did not bring the node back *)
  check_int "departure drops" 3 (Net.dropped_by_departure net);
  check_int "partition drops" 0 (Net.dropped_by_partition net);
  check_int "lost copies include departures" 3 (Net.lost_copies net)

let test_join_under_partition_isolated () =
  let e, net = make ~nodes:3 () in
  Net.partition net [ [ 0; 1 ]; [ 2 ] ];
  let id = Net.add_node net in
  check_int "fresh id allocated past the founders" 3 id;
  let got = collect net id in
  Net.send net ~src:0 ~dst:id "into the singleton";
  Engine.run e;
  check "joiner is isolated until heal" true (got () = []);
  Net.heal net;
  Net.send net ~src:0 ~dst:id "after heal";
  Engine.run e;
  check "joiner reachable after heal" true
    (got () = [ (0, "after heal") ])

let () =
  Alcotest.run "net"
    [
      ( "delivery",
        [
          Alcotest.test_case "unicast" `Quick test_unicast;
          Alcotest.test_case "unicast latency" `Quick test_unicast_latency_positive;
          Alcotest.test_case "broadcast all" `Quick test_broadcast_all;
          Alcotest.test_case "broadcast no self" `Quick test_broadcast_no_self;
          Alcotest.test_case "self immediate" `Quick test_broadcast_self_immediate;
          Alcotest.test_case "no handler" `Quick test_no_handler_counts_dropped;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "fifo link" `Quick test_fifo_link_order;
          Alcotest.test_case "non-fifo reorders" `Quick test_non_fifo_can_reorder;
        ] );
      ( "faults",
        [
          Alcotest.test_case "drop all" `Quick test_drop_fault;
          Alcotest.test_case "duplicate" `Quick test_dup_fault;
          Alcotest.test_case "partial drop" `Quick test_partial_drop_statistics;
          Alcotest.test_case "jitter" `Quick test_jitter_delays;
          Alcotest.test_case "drops by cause" `Quick test_dropped_by_cause;
        ] );
      ( "partitions",
        [
          Alcotest.test_case "partition/heal" `Quick test_partition_and_heal;
          Alcotest.test_case "unlisted singleton" `Quick
            test_partition_unlisted_singleton;
          Alcotest.test_case "duplicate membership" `Quick
            test_partition_duplicate_membership_rejected;
        ] );
      ( "membership",
        [
          Alcotest.test_case "departed survives heal" `Quick
            test_departed_survives_heal;
          Alcotest.test_case "join under partition" `Quick
            test_join_under_partition_isolated;
        ] );
      ( "misc",
        [
          Alcotest.test_case "bytes" `Quick test_bytes_accounting;
          Alcotest.test_case "self-broadcast bytes" `Quick
            test_self_broadcast_bytes;
          Alcotest.test_case "invalid args" `Quick test_invalid_args;
          Alcotest.test_case "determinism" `Quick test_determinism_same_seed;
        ] );
    ]
