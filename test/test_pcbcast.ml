(* PC-broadcast: constant-size causal metadata + dynamic membership.

   Four layers of assurance:

   1. Member mechanics: FIFO parking (a future seq waits, never skips),
      per-origin dedup of flooded duplicates, the adopt-first baseline.
   2. Static groups: every run audited by the offline causal oracle
      (FIFO + causal against the extracted R(M)), on full-mesh and
      sparse overlays, which also proves the overlay connected.
   3. Dynamic membership: π_lock joins see exactly the post-join
      traffic, leaves prune without disturbing survivors, and the churn
      driver's oracle stays clean on a mixed schedule.
   4. PC vs BSS: same seed, same workload — both causal engines deliver
      the same message sets at every node (the orders may legitimately
      interleave concurrent messages differently, so sets, not bytes). *)

module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Net = Causalb_net.Net
module Nemesis = Causalb_net.Nemesis
module Pcb = Causalb_core.Pcbcast
module Codec = Causalb_core.Codec
module Fgroup = Causalb_core.Fgroup
module D = Causalb_harness.Drivers

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let w ops = { D.ops; spacing = 0.5; mix = D.Fixed_window 4 }

(* --- 1. member mechanics --- *)

let silent ~dst:_ _ = ()

let test_parking_restores_fifo () =
  let sender = Pcb.member ~id:1 ~send:silent () in
  let e0, _ = Pcb.next_envelope sender ~tag:"a" 0 in
  let e1, _ = Pcb.next_envelope sender ~tag:"b" 1 in
  let m = Pcb.member ~id:0 ~send:silent () in
  Pcb.init_static m ~n:2 ~degree:None;
  Pcb.receive m ~src:1 (Pcb.Env e1);
  check_int "future seq parks" 0 (Pcb.delivered_count m);
  check_int "one parked copy" 1 (Pcb.pending_count m);
  Pcb.receive m ~src:1 (Pcb.Env e0);
  check_int "gap filled, both delivered" 2 (Pcb.delivered_count m);
  check_int "nothing left parked" 0 (Pcb.pending_count m)

let test_duplicate_copies_deliver_once () =
  let sender = Pcb.member ~id:1 ~send:silent () in
  let e0, _ = Pcb.next_envelope sender 0 in
  let m = Pcb.member ~id:0 ~send:silent () in
  Pcb.init_static m ~n:2 ~degree:None;
  (* the same physical message arrives on two links, as flooding makes
     it do — the per-origin cursor must deliver exactly one copy *)
  Pcb.receive m ~src:1 (Pcb.Env e0);
  Pcb.receive m ~src:2 (Pcb.Env e0);
  check_int "one delivery" 1 (Pcb.delivered_count m)

let test_adopt_first_baseline () =
  (* an unknown origin's first-seen seq becomes the cursor: a joiner
     starts mid-stream without demanding unreachable history *)
  let sender = Pcb.member ~id:1 ~send:silent () in
  for _ = 1 to 5 do
    ignore (Pcb.next_envelope sender 0)
  done;
  let e5, _ = Pcb.next_envelope sender 0 in
  let e6, _ = Pcb.next_envelope sender 0 in
  let m = Pcb.member ~id:0 ~send:silent () in
  Pcb.receive m ~src:1 (Pcb.Env e5);
  Pcb.receive m ~src:1 (Pcb.Env e6);
  check_int "stream adopted mid-flight" 2 (Pcb.delivered_count m)

(* --- 2. static groups under the oracle --- *)

let test_static_runs_oracle_clean () =
  List.iter
    (fun seed ->
      let r = D.run_pc ~seed ~replicas:5 (w 40) in
      check "static oracle clean" true r.D.pc_checks_ok;
      check_int "no loss" 0 r.D.pc_lost;
      check_int "membership stable" 5 r.D.pc_members;
      check_int "every member delivered every op" (5 * 41) r.D.pc_delivered)
    [ 3; 17; 2026 ]

let test_sparse_overlay_reaches_everyone () =
  (* flooding on the ring+chords overlay must reach all members — a
     delivery count equal to n per broadcast proves connectivity *)
  let n = 24 in
  let e = Engine.create ~seed:7 () in
  let net = Net.create e ~nodes:n ~latency:Latency.lan ~fifo:true () in
  let g = Fgroup.Pc.create ~degree:4 net ~enc:Codec.put_int ~dec:Codec.get_int () in
  for i = 0 to 5 do
    Engine.schedule_at e ~time:(float_of_int i) (fun () ->
        ignore (Fgroup.Pc.bcast g ~src:(i mod n) ~tag:(Printf.sprintf "op%d" i) i))
  done;
  Engine.run e;
  for i = 0 to n - 1 do
    check_int "member saw all broadcasts" 6
      (List.length (Fgroup.Pc.delivered_tags g i))
  done

(* --- 3. dynamic membership --- *)

let test_join_sees_post_join_traffic () =
  let e = Engine.create ~seed:5 () in
  let net = Net.create e ~nodes:3 ~fifo:true () in
  let g = Pcb.Group.create net () in
  Engine.schedule_at e ~time:1.0 (fun () ->
      ignore (Pcb.Group.bcast g ~src:0 ~tag:"pre" 0));
  Engine.schedule_at e ~time:5.0 (fun () ->
      ignore (Pcb.Group.join g ~contact:0));
  Engine.schedule_at e ~time:10.0 (fun () ->
      ignore (Pcb.Group.bcast g ~src:1 ~tag:"post" 1));
  Engine.run e;
  check_int "group grew" 4 (Pcb.Group.size g);
  let joiner = Pcb.Group.member g 3 in
  check "joiner saw post-join traffic" true
    (List.mem "post" (Pcb.delivered_tags joiner));
  check "joiner missed pre-join history" true
    (not (List.mem "pre" (Pcb.delivered_tags joiner)));
  List.iter
    (fun i ->
      check "founders saw both" true
        (List.mem "pre" (Pcb.Group.delivered_tags g i)
        && List.mem "post" (Pcb.Group.delivered_tags g i)))
    [ 0; 1; 2 ]

let test_leave_prunes_without_disturbing_survivors () =
  let e = Engine.create ~seed:6 () in
  let net = Net.create e ~nodes:4 ~fifo:true () in
  let g = Pcb.Group.create net () in
  Engine.schedule_at e ~time:1.0 (fun () ->
      ignore (Pcb.Group.bcast g ~src:2 ~tag:"early" 0));
  Engine.schedule_at e ~time:5.0 (fun () -> Pcb.Group.leave g 2);
  Engine.schedule_at e ~time:10.0 (fun () ->
      ignore (Pcb.Group.bcast g ~src:0 ~tag:"late" 1));
  Engine.run e;
  check "alive excludes the departed" true (Pcb.Group.alive g = [ 0; 1; 3 ]);
  List.iter
    (fun i ->
      check "survivors saw the late broadcast" true
        (List.mem "late" (Pcb.Group.delivered_tags g i)))
    [ 0; 1; 3 ];
  check "departed member saw nothing new" true
    (not (List.mem "late" (Pcb.Group.delivered_tags g 2)))

let test_churn_schedule_oracle_clean () =
  let nemesis =
    [
      { Nemesis.at = 3.0; action = Nemesis.Join { contact = 0 } };
      { Nemesis.at = 8.0; action = Nemesis.Leave 1 };
    ]
  in
  let r = D.run_pc ~seed:9 ~nemesis ~replicas:4 (w 30) in
  check "churn oracle clean" true r.D.pc_checks_ok;
  check_int "one join" 1 (List.length r.D.pc_joined);
  check "the scheduled leave happened" true (r.D.pc_left = [ 1 ]);
  check_int "peak membership" 5 r.D.pc_members

(* --- 4. PC vs BSS on the same workload --- *)

(* Both engines promise causal delivery; on a loss-free static group
   they must deliver the same message SET at every node.  The orders
   may interleave concurrent messages differently (different metadata,
   different admissible schedules), so the comparison is per-node sets,
   deliberately not byte-for-byte transcripts. *)
let delivered_sets run_tags ~nodes = List.init nodes (fun i -> List.sort compare (run_tags i))

let test_pc_vs_bss_same_delivered_sets () =
  let nodes = 4 and ops = 32 in
  List.iter
    (fun seed ->
      let tag i = Printf.sprintf "op%d" i in
      let bss =
        let e = Engine.create ~seed () in
        let net = Net.create e ~nodes ~latency:Latency.lan ~fifo:true () in
        let g = Fgroup.Bss.create net ~enc:Codec.put_int ~dec:Codec.get_int () in
        for i = 0 to ops - 1 do
          Engine.schedule_at e ~time:(0.5 *. float_of_int i) (fun () ->
              Fgroup.Bss.bcast g ~src:(i mod nodes) ~tag:(tag i) i)
        done;
        Engine.run e;
        delivered_sets (Fgroup.Bss.delivered_tags g) ~nodes
      in
      let pc =
        let e = Engine.create ~seed () in
        let net = Net.create e ~nodes ~latency:Latency.lan ~fifo:true () in
        let g = Fgroup.Pc.create net ~enc:Codec.put_int ~dec:Codec.get_int () in
        for i = 0 to ops - 1 do
          Engine.schedule_at e ~time:(0.5 *. float_of_int i) (fun () ->
              ignore (Fgroup.Pc.bcast g ~src:(i mod nodes) ~tag:(tag i) i))
        done;
        Engine.run e;
        delivered_sets (Fgroup.Pc.delivered_tags g) ~nodes
      in
      let all = List.sort compare (List.init ops tag) in
      check "bss delivered everything everywhere" true
        (List.for_all (( = ) all) bss);
      check "pc delivered everything everywhere" true
        (List.for_all (( = ) all) pc);
      check "pc sets = bss sets" true (pc = bss))
    [ 2; 13; 77 ]

let () =
  Alcotest.run "pcbcast"
    [
      ( "member",
        [
          Alcotest.test_case "parking restores fifo" `Quick
            test_parking_restores_fifo;
          Alcotest.test_case "duplicates deliver once" `Quick
            test_duplicate_copies_deliver_once;
          Alcotest.test_case "adopt-first baseline" `Quick
            test_adopt_first_baseline;
        ] );
      ( "static groups",
        [
          Alcotest.test_case "oracle clean" `Quick
            test_static_runs_oracle_clean;
          Alcotest.test_case "sparse overlay reaches everyone" `Quick
            test_sparse_overlay_reaches_everyone;
        ] );
      ( "membership",
        [
          Alcotest.test_case "join sees post-join traffic" `Quick
            test_join_sees_post_join_traffic;
          Alcotest.test_case "leave prunes survivors' peers" `Quick
            test_leave_prunes_without_disturbing_survivors;
          Alcotest.test_case "churn schedule oracle clean" `Quick
            test_churn_schedule_oracle_clean;
        ] );
      ( "pc vs bss",
        [
          Alcotest.test_case "same delivered sets" `Quick
            test_pc_vs_bss_same_delivered_sets;
        ] );
    ]
