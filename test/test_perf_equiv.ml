(* Equivalence suite for the reverse-indexed delivery engines.

   The seed list-scan engines live on in [Causalb_reference]; every
   property here replays one random workload through the frozen seed
   engine and the indexed engine of [Causalb_core] and demands
   bit-identical observable state: delivered order, pending set, blocked
   ancestors, and the uniform metrics counters.  Workloads include
   duplicate receives (the transport injects copies under fault
   schedules) and [After_any] predicates, the two places where a naive
   wakeup index diverges from the pool sweep.  Delivered orders are also
   audited by the offline causal checker, so agreement with the oracle
   is not trusted blindly. *)

module Label = Causalb_graph.Label
module Dep = Causalb_graph.Dep
module Vc = Causalb_clock.Vector_clock
module Engine = Causalb_sim.Engine
module Trace = Causalb_sim.Trace
module Trace_check = Causalb_check.Trace_check
module Message = Causalb_core.Message
module Osend = Causalb_core.Osend
module Bss = Causalb_core.Bss
module Fifo = Causalb_core.Fifo
module Asend = Causalb_core.Asend
module Group = Causalb_core.Group
module Checker = Causalb_core.Checker
module Metrics = Causalb_stackbase.Metrics
module Stack = Causalb_stack.Stack
module Rosend = Causalb_reference.Osend
module Rbss = Causalb_reference.Bss
module Rfifo = Causalb_reference.Fifo
module Rasend = Causalb_reference.Asend

let test ?(count = 150) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let label_of_index i = Label.make ~origin:(i mod 5) ~seq:(i / 5) ()

(* --- OSend: random predicate DAGs, partial arrival, duplicates --- *)

(* For each message: a predicate over earlier indices (Null / After /
   After_all / After_any), an arrival permutation, duplicate re-receives,
   and a cut that withholds a suffix so some messages stay parked. *)
let osend_workload_gen =
  let open QCheck2.Gen in
  int_range 1 32 >>= fun n ->
  let dep_for i =
    if i = 0 then return Dep.null
    else
      let earlier = int_range 0 (i - 1) in
      oneof
        [
          return Dep.null;
          (earlier >|= fun j -> Dep.after (label_of_index j));
          ( list_size (int_range 1 3) earlier >|= fun js ->
            Dep.after_all
              (List.map label_of_index (List.sort_uniq Int.compare js)) );
          ( list_size (int_range 1 3) earlier >|= fun js ->
            Dep.after_any
              (List.map label_of_index (List.sort_uniq Int.compare js)) );
        ]
  in
  let rec deps i acc =
    if i >= n then return (List.rev acc)
    else dep_for i >>= fun d -> deps (i + 1) (d :: acc)
  in
  deps 0 [] >>= fun deps ->
  shuffle_l (List.init n Fun.id) >>= fun arrival ->
  list_size (int_range 0 6) (int_range 0 (n - 1)) >>= fun dups ->
  int_range ((n + 1) / 2) (n + List.length dups) >|= fun cut ->
  (n, deps, arrival, dups, cut)

let osend_arrivals (n, deps, arrival, dups, cut) =
  let msg i =
    Message.make ~label:(label_of_index i) ~sender:(i mod 5)
      ~dep:(List.nth deps i) i
  in
  let seq = arrival @ dups in
  let seq = List.filteri (fun k _ -> k < cut) seq in
  ignore n;
  List.map msg seq

let audit_causal graph order =
  let tr = Trace.create () in
  List.iteri
    (fun i l ->
      Trace.record tr ~time:(float_of_int i) ~node:0 ~kind:Trace.Deliver
        ~tag:(Label.to_string l) ())
    order;
  Trace_check.causal ~graph tr = []

let prop_osend_equiv =
  test "osend: indexed = seed list-scan" osend_workload_gen (fun w ->
      let reference = Rosend.create ~id:0 () in
      let indexed = Osend.create ~id:0 () in
      List.iter
        (fun m ->
          Rosend.receive reference m;
          Osend.receive indexed m)
        (osend_arrivals w);
      Rosend.delivered_order reference = Osend.delivered_order indexed
      && List.map Message.label (Rosend.pending reference)
         = List.map Message.label (Osend.pending indexed)
      && Rosend.pending_count reference = Osend.pending_count indexed
      && Rosend.blocked_on reference = Osend.blocked_on indexed
      && Rosend.buffered_ever reference = Osend.buffered_ever indexed
      && (Rosend.metrics reference).Metrics.buffered
         = (Osend.metrics indexed).Metrics.buffered
      && audit_causal (Osend.graph indexed) (Osend.delivered_order indexed))

(* --- BSS: random vector stamps, overshoot, duplicates --- *)

(* Per-sender sequences 1..k with other components drawn at random: some
   envelopes are deliverable, some buffer, some can never fire (their
   stamp over-claims a component) — both engines must agree on all of
   it, including the zombie bookkeeping left by duplicate copies. *)
let bss_workload_gen =
  let open QCheck2.Gen in
  int_range 2 4 >>= fun nodes ->
  let counts = list_repeat nodes (int_range 0 5) in
  counts >>= fun counts ->
  let envs =
    List.concat
      (List.mapi
         (fun s k -> List.init k (fun seq -> (s, seq + 1)))
         counts)
  in
  let stamp_for (s, seq) =
    let comp k = if k = s then return seq else int_range 0 6 in
    let rec build k acc =
      if k >= nodes then return (List.rev acc)
      else comp k >>= fun v -> build (k + 1) (v :: acc)
    in
    build 0 [] >|= fun comps -> (s, seq, comps)
  in
  let rec all es acc =
    match es with
    | [] -> return (List.rev acc)
    | e :: rest -> stamp_for e >>= fun st -> all rest (st :: acc)
  in
  all envs [] >>= fun stamped ->
  let total = List.length stamped in
  if total = 0 then return (nodes, [])
  else
    list_size (int_range 0 4) (int_range 0 (total - 1)) >>= fun dups ->
    shuffle_l (List.init total Fun.id @ dups) >|= fun order ->
    (nodes, List.map (List.nth stamped) order)

let prop_bss_equiv =
  test "bss: indexed = seed list-scan" bss_workload_gen
    (fun (nodes, arrivals) ->
      let reference = Rbss.member ~id:0 ~group_size:nodes () in
      let indexed = Bss.member ~id:0 ~group_size:nodes () in
      List.iter
        (fun (s, seq, comps) ->
          let e =
            {
              Bss.sender = s;
              stamp = Vc.of_array (Array.of_list comps);
              tag = Printf.sprintf "%d:%d" s seq;
              payload = 0;
            }
          in
          Rbss.receive reference e;
          Bss.receive indexed e)
        arrivals;
      Rbss.delivered_tags reference = Bss.delivered_tags indexed
      && Rbss.delivered_count reference = Bss.delivered_count indexed
      && Rbss.pending_count reference = Bss.pending_count indexed
      && Rbss.buffered_ever reference = Bss.buffered_ever indexed)

(* --- FIFO: shuffled per-sender sequences, gaps, duplicates --- *)

let fifo_workload_gen =
  let open QCheck2.Gen in
  int_range 1 3 >>= fun nodes ->
  list_repeat nodes (int_range 0 8) >>= fun counts ->
  let envs =
    List.concat
      (List.mapi (fun s k -> List.init k (fun seq -> (s, seq))) counts)
  in
  let total = List.length envs in
  if total = 0 then return (nodes, [])
  else
    list_size (int_range 0 5) (int_range 0 (total - 1)) >>= fun dups ->
    shuffle_l (List.init total Fun.id @ dups) >>= fun order ->
    (* dropping a suffix leaves sequence gaps: later numbers park forever *)
    int_range (total / 2) (List.length order) >|= fun cut ->
    (nodes, List.filteri (fun k _ -> k < cut) (List.map (List.nth envs) order))

let prop_fifo_equiv =
  test "fifo: indexed = seed list-scan" fifo_workload_gen
    (fun (nodes, arrivals) ->
      let reference = Rfifo.member ~id:0 ~group_size:nodes () in
      let indexed = Fifo.member ~id:0 ~group_size:nodes () in
      List.iter
        (fun (s, seq) ->
          let e =
            {
              Fifo.sender = s;
              seq;
              tag = Printf.sprintf "%d:%d" s seq;
              payload = 0;
            }
          in
          Rfifo.receive reference e;
          Fifo.receive indexed e)
        arrivals;
      Rfifo.delivered_tags reference = Fifo.delivered_tags indexed
      && Rfifo.delivered_count reference = Fifo.delivered_count indexed
      && Rfifo.pending_count reference = Fifo.pending_count indexed
      && Rfifo.buffered_ever reference = Fifo.buffered_ever indexed)

(* --- Merge / Counted: heap drain = stable sort, with compare ties --- *)

(* A coarse comparator (payload mod 3) forces ties, so only an engine
   that preserves arrival order among equal keys matches the seed's
   stable [List.sort]. *)
let tie_compare a b =
  Int.compare (Message.payload a mod 3) (Message.payload b mod 3)

let msg_of_int i =
  Message.make ~label:(label_of_index i) ~sender:(i mod 5) ~dep:Dep.null i

let merge_gen =
  let open QCheck2.Gen in
  int_range 0 40 >>= fun n ->
  list_repeat n (int_range 0 9) >|= fun syncs -> (n, syncs)

let prop_merge_equiv =
  test "merge: heap = stable sort" merge_gen (fun (n, syncs) ->
      (* payload i mod 10 = 0 marks a sync message *)
      let is_sync m = List.nth syncs (Message.payload m mod n) = 0 in
      let is_sync m = n > 0 && is_sync m in
      let reference =
        Rasend.Merge.create ~is_sync ~compare:tie_compare ()
      in
      let indexed = Asend.Merge.create ~is_sync ~compare:tie_compare () in
      for i = 0 to n - 1 do
        let m = msg_of_int i in
        Rasend.Merge.on_causal_deliver reference m;
        Asend.Merge.on_causal_deliver indexed m
      done;
      Rasend.Merge.total_order reference = Asend.Merge.total_order indexed
      && Rasend.Merge.buffered reference = Asend.Merge.buffered indexed
      && Rasend.Merge.batches reference = Asend.Merge.batches indexed
      && (Rasend.Merge.metrics reference).Metrics.buffered
         = (Asend.Merge.metrics indexed).Metrics.buffered)

let counted_gen =
  let open QCheck2.Gen in
  int_range 1 5 >>= fun batch -> int_range 0 40 >|= fun n -> (batch, n)

let prop_counted_equiv =
  test "counted: heap = stable sort" counted_gen (fun (batch, n) ->
      let reference = Rasend.Counted.create ~batch_size:batch ~compare:tie_compare () in
      let indexed = Asend.Counted.create ~batch_size:batch ~compare:tie_compare () in
      for i = 0 to n - 1 do
        let m = msg_of_int i in
        Rasend.Counted.on_causal_deliver reference m;
        Asend.Counted.on_causal_deliver indexed m
      done;
      Rasend.Counted.total_order reference = Asend.Counted.total_order indexed
      && Rasend.Counted.buffered reference = Asend.Counted.buffered indexed
      && Rasend.Counted.batches reference = Asend.Counted.batches indexed
      && (Rasend.Counted.metrics reference).Metrics.buffered
         = (Asend.Counted.metrics indexed).Metrics.buffered)

(* --- wakeup cascades: deep chain and wide fan in one receive --- *)

(* A chain m0 <- m1 <- ... arriving in reverse parks everything on the
   missing head; receiving m0 must release the whole chain in one call,
   in chain order, leaving no residue in the index. *)
let test_chain_cascade () =
  let n = 500 in
  let msg i =
    Message.make ~label:(label_of_index i) ~sender:0
      ~dep:(if i = 0 then Dep.null else Dep.after (label_of_index (i - 1)))
      i
  in
  let t = Osend.create ~id:0 () in
  for i = n - 1 downto 1 do
    Osend.receive t (msg i)
  done;
  check_int "all parked" (n - 1) (Osend.pending_count t);
  Alcotest.(check (list string))
    "blocked on head only"
    [ Label.to_string (label_of_index 0) ]
    (List.map Label.to_string (Osend.blocked_on t));
  Osend.receive t (msg 0);
  check_int "all delivered" n (Osend.delivered_count t);
  check_int "nothing pending" 0 (Osend.pending_count t);
  check "chain order" true
    (Osend.delivered_order t = List.init n label_of_index);
  check "no stale blocked_on" true (Osend.blocked_on t = [])

let test_fan_cascade () =
  let n = 500 in
  let root = Label.make ~origin:9 ~seq:0 () in
  let t = Osend.create ~id:0 () in
  for i = 0 to n - 1 do
    Osend.receive t
      (Message.make ~label:(label_of_index i) ~sender:0 ~dep:(Dep.after root)
         i)
  done;
  check_int "fan parked" n (Osend.pending_count t);
  Osend.receive t (Message.make ~label:root ~sender:9 ~dep:Dep.null (-1));
  check_int "fan delivered" (n + 1) (Osend.delivered_count t);
  check_int "fan drained" 0 (Osend.pending_count t);
  (* one generation: arrival order is preserved across the whole fan *)
  check "fan order" true
    (Osend.delivered_order t = (root :: List.init n label_of_index))

(* --- partition / heal: buffered traffic drains in one cascade --- *)

(* The minority side buffers a whole dependency chain while the root is
   swallowed by the partition; after heal, re-injecting the root through
   the recovery path must release everything at once and leave no stale
   [blocked_on] entries. *)
let test_partition_heal_cascade () =
  let engine = Engine.create ~seed:37 () in
  let latency = Causalb_sim.Latency.lan in
  let stack =
    Stack.compose ~ordering:Stack.Osend ~latency ~fifo:false engine ~nodes:3
      ()
  in
  let chain = 12 in
  let root = ref None in
  let labels = ref [] in
  Engine.schedule_at engine ~time:0.0 (fun () ->
      Stack.partition stack [ [ 0 ]; [ 1; 2 ] ]);
  Engine.schedule_at engine ~time:1.0 (fun () ->
      root := Stack.submit stack ~src:0 ~dep:Dep.null "root");
  (* the chain is sent after heal, so only the root is missing *)
  Engine.schedule_at engine ~time:50.0 (fun () -> Stack.heal stack);
  for i = 1 to chain do
    Engine.schedule_at engine
      ~time:(50.0 +. float_of_int i)
      (fun () ->
        let dep =
          match !labels with
          | [] -> Dep.after (Option.get !root)
          | l :: _ -> Dep.after l
        in
        labels := Option.get (Stack.submit stack ~src:0 ~dep "link") :: !labels)
  done;
  Stack.run stack;
  check_int "node 1 stuck" 0 (Stack.delivered_count stack 1);
  Alcotest.(check (list string))
    "blocked on root only"
    [ Label.to_string (Option.get !root) ]
    (List.map Label.to_string (Stack.blocked_on stack 1));
  (* recovery: one re-broadcast of the root drains the whole chain *)
  let group = Option.get (Stack.osend_group stack) in
  Engine.schedule_at engine
    ~time:(Engine.now engine +. 1.0)
    (fun () ->
      Group.send_labelled group ~src:0
        ~label:(Option.get !root)
        ~dep:Dep.null "root");
  Stack.run stack;
  List.iter
    (fun n ->
      check_int
        (Printf.sprintf "node %d caught up" n)
        (chain + 1)
        (Stack.delivered_count stack n);
      check "no stale blocked_on" true (Stack.blocked_on stack n = []))
    [ 0; 1; 2 ];
  check "identical orders" true
    (Checker.identical_orders (Stack.all_delivered_orders stack))

let () =
  Alcotest.run "perf_equiv"
    [
      ( "equivalence",
        [
          prop_osend_equiv;
          prop_bss_equiv;
          prop_fifo_equiv;
          prop_merge_equiv;
          prop_counted_equiv;
        ] );
      ( "cascades",
        [
          Alcotest.test_case "deep chain, one receive" `Quick
            test_chain_cascade;
          Alcotest.test_case "wide fan, one receive" `Quick test_fan_cascade;
          Alcotest.test_case "partition/heal drains in one cascade" `Quick
            test_partition_heal_cascade;
        ] );
    ]
