(* Tests for the fork-based worker pool and the experiment runner built
   on it.

   The headline property: a parallel run is byte-identical to a
   sequential one.  [Pool.run ~jobs:4] must yield the same JSON-encoded
   results (per task: name, seed, status, captured output) as
   [Pool.run ~jobs:1], and the assembled sweep output of
   [Runner.run ~jobs:4] must equal the [~jobs:1] bytes.  Failure
   handling: a worker that dies mid-shard surfaces a non-zero story
   naming the task it was running and the tasks it never started. *)

module Pool = Causalb_harness.Pool
module Dpool = Causalb_harness.Dpool
module Json = Causalb_util.Json
module Printer = Causalb_util.Printer
module Registry = Causalb_bench.Registry
module Runner = Causalb_bench.Runner

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* A deterministic task: output depends only on (name, seed). *)
let noisy_task name =
  Pool.task ~name (fun ~seed ->
      Printf.printf "%s computed %d\n" name (seed * 3);
      Printf.eprintf "%s stderr line\n" name;
      print_string (String.concat "," (List.init 5 string_of_int));
      print_newline ())

let task_names = [ "alpha"; "beta"; "gamma"; "delta"; "epsilon"; "zeta"; "eta" ]

(* The canonical encoding of a whole report's results: what the byte
   comparison runs over. *)
let encode report =
  String.concat "\n"
    (List.map
       (fun r -> Json.to_string (Pool.json_of_result r))
       report.Pool.results)

let strip_walls report =
  (* wall/gc fields are timing, not semantics; zero them so the JSON
     comparison is exact rather than approximate *)
  {
    report with
    Pool.results =
      List.map
        (fun r -> { r with Pool.wall_ms = 0.0; gc_minor_words = 0.0;
                    gc_major_words = 0.0 })
        report.Pool.results;
  }

let test_parallel_matches_sequential () =
  let tasks () = List.map noisy_task task_names in
  let r1 = Pool.run ~jobs:1 ~base_seed:7 (tasks ()) in
  let r4 = Pool.run ~jobs:4 ~base_seed:7 (tasks ()) in
  check "no failures j1" true (r1.Pool.failures = []);
  check "no failures j4" true (r4.Pool.failures = []);
  check_str "JSON byte-identical -j4 vs -j1"
    (encode (strip_walls r1))
    (encode (strip_walls r4))

let test_seed_independent_of_jobs () =
  let seeds report =
    List.map (fun r -> (r.Pool.name, r.Pool.seed)) report.Pool.results
  in
  let tasks () = List.map noisy_task task_names in
  let r1 = Pool.run ~jobs:1 ~base_seed:11 (tasks ()) in
  let r3 = Pool.run ~jobs:3 ~base_seed:11 (tasks ()) in
  check "same (name, seed) pairs" true (seeds r1 = seeds r3);
  (* and the seed really is per-name: distinct names, distinct seeds *)
  let distinct = List.sort_uniq compare (List.map snd (seeds r1)) in
  check_int "distinct seeds" (List.length task_names) (List.length distinct)

let test_empty_and_singleton () =
  let r = Pool.run ~jobs:4 ~base_seed:1 [] in
  check "empty run ok" true (r.Pool.results = [] && r.Pool.failures = []);
  let r =
    Pool.run ~jobs:4 ~base_seed:1 [ noisy_task "only" ]
  in
  check_int "one result" 1 (List.length r.Pool.results);
  check "one ok" true (List.for_all Pool.ok r.Pool.results)

let test_oversubscribed () =
  (* more workers than tasks: every task still runs exactly once *)
  let tasks = List.map noisy_task [ "a"; "b"; "c" ] in
  let r = Pool.run ~jobs:8 ~base_seed:3 tasks in
  check_int "three results" 3 (List.length r.Pool.results);
  check "all ok" true (List.for_all Pool.ok r.Pool.results);
  check "order preserved" true
    (List.map (fun x -> x.Pool.name) r.Pool.results = [ "a"; "b"; "c" ])

let test_task_exception_is_isolated () =
  let tasks =
    [
      noisy_task "fine";
      Pool.task ~name:"boom" (fun ~seed:_ -> failwith "deliberate");
      noisy_task "also-fine";
    ]
  in
  let r = Pool.run ~jobs:2 ~base_seed:5 tasks in
  check "failure recorded" true (r.Pool.failures = [ "boom" ]);
  check_int "all three reported" 3 (List.length r.Pool.results);
  let boom = List.nth r.Pool.results 1 in
  check "failure message kept" true
    (match boom.Pool.status with
    | Pool.Failed m -> String.length m > 0
    | Pool.Done -> false);
  check "neighbours unaffected" true
    (Pool.ok (List.nth r.Pool.results 0) && Pool.ok (List.nth r.Pool.results 2))

let test_worker_crash_names_tasks () =
  (* [Unix._exit] kills the whole worker process: with jobs = 2 and
     round-robin sharding, worker 0 owns tasks 0 and 2 — it dies inside
     task 0, so task 0 is "while running" and task 2 "before started";
     worker 1's task 1 survives. *)
  let tasks =
    [
      Pool.task ~name:"dies" (fun ~seed:_ -> Unix._exit 9);
      noisy_task "survivor";
      noisy_task "orphaned";
    ]
  in
  let r = Pool.run ~jobs:2 ~base_seed:5 tasks in
  check "both shard tasks failed" true
    (List.sort compare r.Pool.failures = [ "dies"; "orphaned" ]);
  let find n = List.find (fun x -> x.Pool.name = n) r.Pool.results in
  let msg n =
    match (find n).Pool.status with Pool.Failed m -> m | Pool.Done -> ""
  in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  check "names the dying task" true (contains (msg "dies") "\"dies\"");
  check "blames exit code" true (contains (msg "dies") "code 9");
  check "orphan marked not-started" true
    (contains (msg "orphaned") "before \"orphaned\" started");
  check "survivor delivered" true (Pool.ok (find "survivor"))

(* Task names chosen to break line-oriented framing and naive quoting:
   the JSON-line delimiter itself, a quote+backslash, and raw UTF-8.
   Results must cross the worker pipe intact, and a crashed worker's
   attribution messages must embed the name as one valid JSON token. *)
let evil_names =
  [ "new\nline"; "quote\"back\\slash"; "caf\xc3\xa9 \xe2\x80\x94 utf8" ]

let test_evil_names_roundtrip () =
  let tasks () = List.map noisy_task evil_names in
  let r1 = Pool.run ~jobs:1 ~base_seed:9 (tasks ()) in
  let r3 = Pool.run ~jobs:3 ~base_seed:9 (tasks ()) in
  check "no failures" true (r1.Pool.failures = [] && r3.Pool.failures = []);
  check "names intact" true
    (List.map (fun x -> x.Pool.name) r3.Pool.results = evil_names);
  check_str "JSON byte-identical -j3 vs -j1"
    (encode (strip_walls r1))
    (encode (strip_walls r3))

let test_evil_name_crash_attribution () =
  (* worker 0 owns tasks 0 and 2 at jobs = 2: it dies inside the
     newline-named task, orphaning the utf8-named one *)
  let dying = List.nth evil_names 0 in
  let orphan = List.nth evil_names 2 in
  let tasks =
    [
      Pool.task ~name:dying (fun ~seed:_ -> Unix._exit 9);
      noisy_task "survivor";
      noisy_task orphan;
    ]
  in
  let r = Pool.run ~jobs:2 ~base_seed:5 tasks in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  let msg n =
    match
      (List.find (fun x -> x.Pool.name = n) r.Pool.results).Pool.status
    with
    | Pool.Failed m -> m
    | Pool.Done -> ""
  in
  (* the embedded name is the Json token: newline escaped, utf8 raw *)
  check "dying name json-escaped" true
    (contains (msg dying) (Json.to_string (Json.Str dying)));
  check "attribution has no raw newline" true
    (not (String.contains (msg dying) '\n'));
  check "orphan name kept as utf8" true
    (contains (msg orphan) (Json.to_string (Json.Str orphan)));
  (* and the whole report still JSON-roundtrips *)
  List.iter
    (fun res ->
      let res' =
        Pool.result_of_json
          (Json.of_string (Json.to_string (Pool.json_of_result res)))
      in
      check "result roundtrips" true (res = res'))
    r.Pool.results

(* --- the domains pool --- *)

(* Dpool's parallel tasks print through [Printer] (sink capture); with no
   sink installed Printer writes to stdout, so the same task under the
   fork pool's fd capture produces the same bytes — which is what makes
   the cross-pool byte comparison below meaningful. *)
let printer_task name =
  Dpool.task ~name (fun ~seed ->
      Printer.printf "%s computed %d\n" name (seed * 3);
      Printer.string (String.concat "," (List.init 5 string_of_int));
      Printer.newline ())

let pool_printer_task name =
  Pool.task ~name (fun ~seed ->
      Printer.printf "%s computed %d\n" name (seed * 3);
      Printer.string (String.concat "," (List.init 5 string_of_int));
      Printer.newline ())

(* stderr is not part of the Printer contract, so the fork-pool task
   above skips it too: both pools capture exactly the Printer bytes. *)

let test_dpool_matches_pool () =
  let rp = Pool.run ~jobs:1 ~base_seed:7 (List.map pool_printer_task task_names) in
  let rd1 = Dpool.run ~domains:1 ~base_seed:7 (List.map printer_task task_names) in
  let rd3 = Dpool.run ~domains:3 ~base_seed:7 (List.map printer_task task_names) in
  check "no failures" true
    (rp.Pool.failures = [] && rd1.Pool.failures = [] && rd3.Pool.failures = []);
  check_str "JSON byte-identical -J1 vs fork -j1"
    (encode (strip_walls rp))
    (encode (strip_walls rd1));
  check_str "JSON byte-identical -J3 vs -J1"
    (encode (strip_walls rd1))
    (encode (strip_walls rd3))

let test_dpool_failure_isolated () =
  let tasks =
    [
      printer_task "fine";
      Dpool.task ~name:"boom" (fun ~seed:_ -> failwith "deliberate");
      printer_task "also-fine";
    ]
  in
  let r = Dpool.run ~domains:2 ~base_seed:5 tasks in
  check "failure recorded" true (r.Pool.failures = [ "boom" ]);
  check_int "all three reported" 3 (List.length r.Pool.results);
  check "neighbours unaffected" true
    (Pool.ok (List.nth r.Pool.results 0) && Pool.ok (List.nth r.Pool.results 2))

let test_dpool_failed_task_keeps_output () =
  let t =
    Dpool.task ~name:"partial" (fun ~seed:_ ->
        Printer.line "printed before the crash";
        failwith "after printing")
  in
  let r = Dpool.run_one_buffered ~base_seed:1 t in
  check "failed" true (not (Pool.ok r));
  check_str "output survives the raise" "printed before the crash\n"
    r.Pool.output

let test_dpool_sequential_mode () =
  (* Sequential tasks go through Pool.run_one's fd capture, so raw
     prints are captured for them (and only them) *)
  let tasks =
    [
      printer_task "par";
      Dpool.task ~mode:Dpool.Sequential ~name:"timing" (fun ~seed:_ ->
          Printf.printf "raw print from a timing task\n");
    ]
  in
  let r = Dpool.run ~domains:2 ~base_seed:3 tasks in
  check "no failures" true (r.Pool.failures = []);
  check "order is task order" true
    (List.map (fun x -> x.Pool.name) r.Pool.results = [ "par"; "timing" ]);
  let timing = List.nth r.Pool.results 1 in
  check_str "fd capture caught the raw print"
    "raw print from a timing task\n" timing.Pool.output

let test_runner_domains_byte_identical () =
  let exps = List.filter_map Registry.find [ "T3"; "A3"; "T5" ] in
  let o1 = Runner.run ~jobs:1 ~base_seed:42 exps in
  let od = Runner.run_domains ~domains:3 ~base_seed:42 exps in
  check "no failures" true
    (o1.Runner.report.Pool.failures = []
    && od.Runner.report.Pool.failures = []);
  check_str "sweep bytes identical -J3 vs -j1" o1.Runner.stdout_text
    od.Runner.stdout_text

(* --- the runner on the real registry --- *)

let test_runner_sweep_byte_identical () =
  (* a representative slice of the real registry, T1's split included;
     cheap experiments keep the test quick *)
  let exps =
    List.filter_map Registry.find [ "T3"; "A3"; "T5" ]
  in
  check "picked three" true (List.length exps = 3);
  let o1 = Runner.run ~jobs:1 ~base_seed:42 exps in
  let o4 = Runner.run ~jobs:4 ~base_seed:42 exps in
  check "no failures" true
    (o1.Runner.report.Pool.failures = [] && o4.Runner.report.Pool.failures = []);
  check "assembled output non-trivial" true
    (String.length o1.Runner.stdout_text > 200);
  check_str "sweep bytes identical -j4 vs -j1" o1.Runner.stdout_text
    o4.Runner.stdout_text

let test_t1_parts_concatenate () =
  (* the split experiment's parts reassemble into one well-formed table:
     header+rows+footer widths all agree *)
  match Registry.find "T1" with
  | None -> Alcotest.fail "T1 not registered"
  | Some e ->
    check "T1 is split" true (List.length e.Registry.parts > 2);
    let names = List.map (fun p -> p.Registry.pname) e.Registry.parts in
    check "part names are namespaced" true
      (List.for_all
         (fun n -> String.length n > 3 && String.sub n 0 3 = "T1:")
         names)

let test_json_roundtrip () =
  let r =
    {
      Pool.name = "x";
      seed = 123;
      status = Pool.Failed "worker exited with code 9 while running \"x\"";
      wall_ms = 1.5;
      gc_minor_words = 42.0;
      gc_major_words = 7.0;
      output = "line1\n\"quoted\"\tand unicode: \xe2\x80\x94\n";
    }
  in
  let r' = Pool.result_of_json (Json.of_string (Json.to_string (Pool.json_of_result r))) in
  check "roundtrip" true (r = r')

let () =
  Alcotest.run "pool"
    [
      ( "determinism",
        [
          Alcotest.test_case "j4 JSON = j1 JSON" `Quick
            test_parallel_matches_sequential;
          Alcotest.test_case "seeds independent of jobs" `Quick
            test_seed_independent_of_jobs;
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
        ] );
      ( "sharding",
        [
          Alcotest.test_case "empty and singleton" `Quick
            test_empty_and_singleton;
          Alcotest.test_case "oversubscribed" `Quick test_oversubscribed;
        ] );
      ( "failure",
        [
          Alcotest.test_case "task exception isolated" `Quick
            test_task_exception_is_isolated;
          Alcotest.test_case "worker crash names tasks" `Quick
            test_worker_crash_names_tasks;
          Alcotest.test_case "evil names roundtrip" `Quick
            test_evil_names_roundtrip;
          Alcotest.test_case "evil name crash attribution" `Quick
            test_evil_name_crash_attribution;
        ] );
      ( "runner",
        [
          Alcotest.test_case "sweep bytes j4 = j1" `Quick
            test_runner_sweep_byte_identical;
          Alcotest.test_case "T1 split parts" `Quick test_t1_parts_concatenate;
        ] );
      (* Last on purpose: spawning a worker domain makes Unix.fork
         unavailable for the rest of the process (OCaml 5), so every
         real-fork test above must run before the first Dpool spawn. *)
      ( "dpool",
        [
          Alcotest.test_case "J JSON = fork j1 JSON" `Quick
            test_dpool_matches_pool;
          Alcotest.test_case "failure isolated" `Quick
            test_dpool_failure_isolated;
          Alcotest.test_case "failed task keeps output" `Quick
            test_dpool_failed_task_keeps_output;
          Alcotest.test_case "sequential mode fd capture" `Quick
            test_dpool_sequential_mode;
          Alcotest.test_case "runner sweep bytes -J3 = -j1" `Quick
            test_runner_domains_byte_identical;
        ] );
    ]
