(* Tests for the fork-based worker pool and the experiment runner built
   on it.

   The headline property: a parallel run is byte-identical to a
   sequential one.  [Pool.run ~jobs:4] must yield the same JSON-encoded
   results (per task: name, seed, status, captured output) as
   [Pool.run ~jobs:1], and the assembled sweep output of
   [Runner.run ~jobs:4] must equal the [~jobs:1] bytes.  Failure
   handling: a worker that dies mid-shard surfaces a non-zero story
   naming the task it was running and the tasks it never started. *)

module Pool = Causalb_harness.Pool
module Json = Causalb_util.Json
module Registry = Causalb_bench.Registry
module Runner = Causalb_bench.Runner

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* A deterministic task: output depends only on (name, seed). *)
let noisy_task name =
  Pool.task ~name (fun ~seed ->
      Printf.printf "%s computed %d\n" name (seed * 3);
      Printf.eprintf "%s stderr line\n" name;
      print_string (String.concat "," (List.init 5 string_of_int));
      print_newline ())

let task_names = [ "alpha"; "beta"; "gamma"; "delta"; "epsilon"; "zeta"; "eta" ]

(* The canonical encoding of a whole report's results: what the byte
   comparison runs over. *)
let encode report =
  String.concat "\n"
    (List.map
       (fun r -> Json.to_string (Pool.json_of_result r))
       report.Pool.results)

let strip_walls report =
  (* wall/gc fields are timing, not semantics; zero them so the JSON
     comparison is exact rather than approximate *)
  {
    report with
    Pool.results =
      List.map
        (fun r -> { r with Pool.wall_ms = 0.0; gc_minor_words = 0.0;
                    gc_major_words = 0.0 })
        report.Pool.results;
  }

let test_parallel_matches_sequential () =
  let tasks () = List.map noisy_task task_names in
  let r1 = Pool.run ~jobs:1 ~base_seed:7 (tasks ()) in
  let r4 = Pool.run ~jobs:4 ~base_seed:7 (tasks ()) in
  check "no failures j1" true (r1.Pool.failures = []);
  check "no failures j4" true (r4.Pool.failures = []);
  check_str "JSON byte-identical -j4 vs -j1"
    (encode (strip_walls r1))
    (encode (strip_walls r4))

let test_seed_independent_of_jobs () =
  let seeds report =
    List.map (fun r -> (r.Pool.name, r.Pool.seed)) report.Pool.results
  in
  let tasks () = List.map noisy_task task_names in
  let r1 = Pool.run ~jobs:1 ~base_seed:11 (tasks ()) in
  let r3 = Pool.run ~jobs:3 ~base_seed:11 (tasks ()) in
  check "same (name, seed) pairs" true (seeds r1 = seeds r3);
  (* and the seed really is per-name: distinct names, distinct seeds *)
  let distinct = List.sort_uniq compare (List.map snd (seeds r1)) in
  check_int "distinct seeds" (List.length task_names) (List.length distinct)

let test_empty_and_singleton () =
  let r = Pool.run ~jobs:4 ~base_seed:1 [] in
  check "empty run ok" true (r.Pool.results = [] && r.Pool.failures = []);
  let r =
    Pool.run ~jobs:4 ~base_seed:1 [ noisy_task "only" ]
  in
  check_int "one result" 1 (List.length r.Pool.results);
  check "one ok" true (List.for_all Pool.ok r.Pool.results)

let test_oversubscribed () =
  (* more workers than tasks: every task still runs exactly once *)
  let tasks = List.map noisy_task [ "a"; "b"; "c" ] in
  let r = Pool.run ~jobs:8 ~base_seed:3 tasks in
  check_int "three results" 3 (List.length r.Pool.results);
  check "all ok" true (List.for_all Pool.ok r.Pool.results);
  check "order preserved" true
    (List.map (fun x -> x.Pool.name) r.Pool.results = [ "a"; "b"; "c" ])

let test_task_exception_is_isolated () =
  let tasks =
    [
      noisy_task "fine";
      Pool.task ~name:"boom" (fun ~seed:_ -> failwith "deliberate");
      noisy_task "also-fine";
    ]
  in
  let r = Pool.run ~jobs:2 ~base_seed:5 tasks in
  check "failure recorded" true (r.Pool.failures = [ "boom" ]);
  check_int "all three reported" 3 (List.length r.Pool.results);
  let boom = List.nth r.Pool.results 1 in
  check "failure message kept" true
    (match boom.Pool.status with
    | Pool.Failed m -> String.length m > 0
    | Pool.Done -> false);
  check "neighbours unaffected" true
    (Pool.ok (List.nth r.Pool.results 0) && Pool.ok (List.nth r.Pool.results 2))

let test_worker_crash_names_tasks () =
  (* [Unix._exit] kills the whole worker process: with jobs = 2 and
     round-robin sharding, worker 0 owns tasks 0 and 2 — it dies inside
     task 0, so task 0 is "while running" and task 2 "before started";
     worker 1's task 1 survives. *)
  let tasks =
    [
      Pool.task ~name:"dies" (fun ~seed:_ -> Unix._exit 9);
      noisy_task "survivor";
      noisy_task "orphaned";
    ]
  in
  let r = Pool.run ~jobs:2 ~base_seed:5 tasks in
  check "both shard tasks failed" true
    (List.sort compare r.Pool.failures = [ "dies"; "orphaned" ]);
  let find n = List.find (fun x -> x.Pool.name = n) r.Pool.results in
  let msg n =
    match (find n).Pool.status with Pool.Failed m -> m | Pool.Done -> ""
  in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  check "names the dying task" true (contains (msg "dies") "\"dies\"");
  check "blames exit code" true (contains (msg "dies") "code 9");
  check "orphan marked not-started" true
    (contains (msg "orphaned") "before \"orphaned\" started");
  check "survivor delivered" true (Pool.ok (find "survivor"))

(* --- the runner on the real registry --- *)

let test_runner_sweep_byte_identical () =
  (* a representative slice of the real registry, T1's split included;
     cheap experiments keep the test quick *)
  let exps =
    List.filter_map Registry.find [ "T3"; "A3"; "T5" ]
  in
  check "picked three" true (List.length exps = 3);
  let o1 = Runner.run ~jobs:1 ~base_seed:42 exps in
  let o4 = Runner.run ~jobs:4 ~base_seed:42 exps in
  check "no failures" true
    (o1.Runner.report.Pool.failures = [] && o4.Runner.report.Pool.failures = []);
  check "assembled output non-trivial" true
    (String.length o1.Runner.stdout_text > 200);
  check_str "sweep bytes identical -j4 vs -j1" o1.Runner.stdout_text
    o4.Runner.stdout_text

let test_t1_parts_concatenate () =
  (* the split experiment's parts reassemble into one well-formed table:
     header+rows+footer widths all agree *)
  match Registry.find "T1" with
  | None -> Alcotest.fail "T1 not registered"
  | Some e ->
    check "T1 is split" true (List.length e.Registry.parts > 2);
    let names = List.map (fun p -> p.Registry.pname) e.Registry.parts in
    check "part names are namespaced" true
      (List.for_all
         (fun n -> String.length n > 3 && String.sub n 0 3 = "T1:")
         names)

let test_json_roundtrip () =
  let r =
    {
      Pool.name = "x";
      seed = 123;
      status = Pool.Failed "worker exited with code 9 while running \"x\"";
      wall_ms = 1.5;
      gc_minor_words = 42.0;
      gc_major_words = 7.0;
      output = "line1\n\"quoted\"\tand unicode: \xe2\x80\x94\n";
    }
  in
  let r' = Pool.result_of_json (Json.of_string (Json.to_string (Pool.json_of_result r))) in
  check "roundtrip" true (r = r')

let () =
  Alcotest.run "pool"
    [
      ( "determinism",
        [
          Alcotest.test_case "j4 JSON = j1 JSON" `Quick
            test_parallel_matches_sequential;
          Alcotest.test_case "seeds independent of jobs" `Quick
            test_seed_independent_of_jobs;
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
        ] );
      ( "sharding",
        [
          Alcotest.test_case "empty and singleton" `Quick
            test_empty_and_singleton;
          Alcotest.test_case "oversubscribed" `Quick test_oversubscribed;
        ] );
      ( "failure",
        [
          Alcotest.test_case "task exception isolated" `Quick
            test_task_exception_is_isolated;
          Alcotest.test_case "worker crash names tasks" `Quick
            test_worker_crash_names_tasks;
        ] );
      ( "runner",
        [
          Alcotest.test_case "sweep bytes j4 = j1" `Quick
            test_runner_sweep_byte_identical;
          Alcotest.test_case "T1 split parts" `Quick test_t1_parts_concatenate;
        ] );
    ]
