(* Property-based tests (qcheck) on the core data structures and the
   ordering invariants of the engines. *)

module Heap = Causalb_util.Heap
module Stats = Causalb_util.Stats
module Vc = Causalb_clock.Vector_clock
module Label = Causalb_graph.Label
module Dep = Causalb_graph.Dep
module Depgraph = Causalb_graph.Depgraph
module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Net = Causalb_net.Net
module Message = Causalb_core.Message
module Osend = Causalb_core.Osend
module Group = Causalb_core.Group
module Checker = Causalb_core.Checker
module Sm = Causalb_data.State_machine
module Dt = Causalb_data.Datatypes

let test ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- generators --- *)

let small_int_list = QCheck2.Gen.(list_size (int_range 0 64) (int_range (-1000) 1000))

(* A random DAG description: for each of n messages, a list of indices of
   earlier messages it depends on; plus an arrival permutation. *)
let dag_gen =
  let open QCheck2.Gen in
  int_range 1 14 >>= fun n ->
  let deps_for i =
    if i = 0 then return []
    else
      list_size (int_range 0 (min i 3)) (int_range 0 (i - 1))
      >|= List.sort_uniq Int.compare
  in
  let rec all i acc =
    if i >= n then return (List.rev acc)
    else deps_for i >>= fun d -> all (i + 1) (d :: acc)
  in
  all 0 [] >>= fun deps ->
  (* arrival order: a permutation of 0..n-1 *)
  shuffle_l (List.init n Fun.id) >|= fun arrival -> (n, deps, arrival)

let label_of_index i = Label.make ~origin:(i mod 5) ~seq:(i / 5) ()

let build_graph (n, deps, _) =
  let g = Depgraph.create () in
  List.iteri
    (fun i d ->
      Depgraph.add g (label_of_index i)
        ~dep:(Dep.after_all (List.map label_of_index d)))
    (List.init n (fun i -> List.nth deps i));
  g

let messages_of (n, deps, _) =
  List.init n (fun i ->
      Message.make ~label:(label_of_index i) ~sender:(i mod 5)
        ~dep:(Dep.after_all (List.map label_of_index (List.nth deps i)))
        i)

(* --- heap --- *)

let prop_heap_sorts =
  test "heap drain = sorted input" small_int_list (fun l ->
      let h = Heap.create ~cmp:Int.compare () in
      List.iter (Heap.push h) l;
      Heap.drain h = List.sort Int.compare l)

let prop_heap_pop_min =
  test "heap pop is minimum" small_int_list (fun l ->
      let h = Heap.create ~cmp:Int.compare () in
      List.iter (Heap.push h) l;
      match Heap.pop h with
      | None -> l = []
      | Some m -> List.for_all (fun x -> m <= x) l)

(* --- stats --- *)

let prop_stats_bounds =
  test "mean and percentiles within [min,max]"
    QCheck2.Gen.(list_size (int_range 1 64) (float_bound_inclusive 1000.0))
    (fun l ->
      let s = Stats.create () in
      Stats.add_list s l;
      let lo = Stats.min_value s and hi = Stats.max_value s in
      let inside v = v >= lo -. 1e-9 && v <= hi +. 1e-9 in
      inside (Stats.mean s)
      && inside (Stats.percentile s 10.0)
      && inside (Stats.percentile s 90.0))

let prop_stats_median_rank =
  test "at least half the samples <= median"
    QCheck2.Gen.(list_size (int_range 1 64) (float_bound_inclusive 100.0))
    (fun l ->
      let s = Stats.create () in
      Stats.add_list s l;
      let m = Stats.median s in
      let below = List.length (List.filter (fun x -> x <= m +. 1e-9) l) in
      2 * below >= List.length l)

(* --- vector clocks --- *)

let vc_gen =
  QCheck2.Gen.(
    int_range 1 6 >>= fun n ->
    array_size (return n) (int_range 0 8) >|= Vc.of_array)

let vc_pair_gen =
  QCheck2.Gen.(
    int_range 1 6 >>= fun n ->
    let v = array_size (return n) (int_range 0 8) >|= Vc.of_array in
    pair v v)

let vc_triple_gen =
  QCheck2.Gen.(
    int_range 1 6 >>= fun n ->
    let v = array_size (return n) (int_range 0 8) >|= Vc.of_array in
    triple v v v)

let prop_vc_leq_reflexive =
  test "vc leq reflexive" vc_gen (fun v -> Vc.leq v v)

let prop_vc_leq_antisymmetric =
  test "vc leq antisymmetric" vc_pair_gen (fun (a, b) ->
      if Vc.leq a b && Vc.leq b a then Vc.equal a b else true)

let prop_vc_leq_transitive =
  test "vc leq transitive" vc_triple_gen (fun (a, b, c) ->
      if Vc.leq a b && Vc.leq b c then Vc.leq a c else true)

let prop_vc_merge_lub =
  test "vc merge is least upper bound" vc_triple_gen (fun (a, b, c) ->
      let m = Vc.merge a b in
      Vc.leq a m && Vc.leq b m
      && if Vc.leq a c && Vc.leq b c then Vc.leq m c else true)

let prop_vc_concurrent_symmetric =
  test "vc concurrency symmetric" vc_pair_gen (fun (a, b) ->
      Vc.concurrent a b = Vc.concurrent b a)

let prop_vc_compare_consistent =
  test "vc compare_causal consistent with leq" vc_pair_gen (fun (a, b) ->
      match Vc.compare_causal a b with
      | Vc.Equal -> Vc.equal a b
      | Vc.Before -> Vc.lt a b
      | Vc.After -> Vc.lt b a
      | Vc.Concurrent -> (not (Vc.leq a b)) && not (Vc.leq b a))

(* --- dependency graphs --- *)

let prop_graph_topological_valid =
  test "topological order is a valid extension" dag_gen (fun desc ->
      let g = build_graph desc in
      Depgraph.verify_sequence g (Depgraph.topological g))

let prop_graph_linearizations_valid =
  test "every enumerated linearization is valid" ~count:100 dag_gen
    (fun desc ->
      let g = build_graph desc in
      let seqs = Depgraph.linearizations ~limit:50 g in
      seqs <> [] && List.for_all (Depgraph.verify_sequence g) seqs)

let prop_graph_happens_before_irreflexive_antisym =
  test "happens_before is a strict order" ~count:100 dag_gen (fun desc ->
      let g = build_graph desc in
      let ls = Depgraph.labels g in
      List.for_all
        (fun a ->
          (not (Depgraph.happens_before g a a))
          && List.for_all
               (fun b ->
                 not (Depgraph.happens_before g a b && Depgraph.happens_before g b a))
               ls)
        ls)

let prop_graph_sync_point_total =
  test "sync points are comparable to every node" ~count:100 dag_gen
    (fun desc ->
      let g = build_graph desc in
      List.for_all
        (fun sp ->
          List.for_all
            (fun other ->
              Label.equal sp other || not (Depgraph.concurrent g sp other))
            (Depgraph.labels g))
        (Depgraph.sync_points g))

(* --- Osend engine --- *)

let prop_osend_any_arrival_order_safe =
  test "osend: any arrival order yields a valid extension, all delivered"
    dag_gen (fun ((n, _, arrival) as desc) ->
      let g = build_graph desc in
      let msgs = Array.of_list (messages_of desc) in
      let m = Osend.create ~id:0 () in
      List.iter (fun i -> Osend.receive m msgs.(i)) arrival;
      Osend.delivered_count m = n
      && Osend.pending_count m = 0
      && Checker.causal_safety g (Osend.delivered_order m))

let prop_osend_graph_matches =
  test "osend: extracted graph equals the sent graph" ~count:100 dag_gen
    (fun ((_, _, arrival) as desc) ->
      let g = build_graph desc in
      let msgs = Array.of_list (messages_of desc) in
      let m = Osend.create ~id:0 () in
      List.iter (fun i -> Osend.receive m msgs.(i)) arrival;
      let g' = Osend.graph m in
      List.sort compare (Depgraph.edges g)
      = List.sort compare (Depgraph.edges g')
      && Label.Set.equal
           (Label.Set.of_list (Depgraph.labels g))
           (Label.Set.of_list (Depgraph.labels g')))

(* --- end-to-end group property --- *)

let prop_group_network_safety =
  test "group over jittery net: same set + causal safety at all members"
    ~count:60
    QCheck2.Gen.(pair (int_range 0 10_000) dag_gen)
    (fun (seed, ((_, deps, _) as desc)) ->
      let e = Engine.create ~seed () in
      let net =
        Net.create e ~nodes:3
          ~latency:(Latency.lognormal ~mu:0.5 ~sigma:1.2 ())
          ~fifo:false ()
      in
      let g = Group.create net () in
      (* submit in index order with the declared deps; spread in time *)
      List.iteri
        (fun i d ->
          Engine.schedule_at e ~time:(float_of_int i *. 0.3) (fun () ->
              ignore
                (Group.send_labelled g ~src:(i mod 3) ~label:(label_of_index i)
                   ~dep:(Dep.after_all (List.map label_of_index d))
                   i)))
        deps;
      Engine.run e;
      let orders = Group.all_delivered_orders g in
      let graph = Osend.graph (Group.member g 0) in
      ignore desc;
      Checker.same_set orders && Checker.causal_safety_all graph orders)

(* --- commutativity / transition preservation --- *)

let int_op_gen =
  QCheck2.Gen.(
    oneof
      [
        (int_range 1 10 >|= fun n -> Dt.Int_register.Inc n);
        (int_range 1 10 >|= fun n -> Dt.Int_register.Dec n);
      ])

let prop_commutative_ops_transition_preserving =
  test "all-commutative windows are transition preserving"
    QCheck2.Gen.(list_size (int_range 0 5) int_op_gen)
    (fun ops ->
      let m = Dt.Int_register.machine in
      let labels = List.mapi (fun i _ -> label_of_index i) ops in
      let act = Causalb_graph.Activity.fan ~body:labels () in
      let tbl = List.combine labels ops in
      let apply s lbl =
        m.Sm.apply s (List.assoc lbl tbl)
      in
      Causalb_graph.Activity.is_stable_point ~apply ~equal:Int.equal ~init:0 act)

let prop_commute_at_symmetric =
  test "commute_at symmetric"
    QCheck2.Gen.(triple int_op_gen int_op_gen (int_range (-20) 20))
    (fun (a, b, s) ->
      let m = Dt.Int_register.machine in
      Sm.commute_at m s a b = Sm.commute_at m s b a)

(* --- total-order properties --- *)

module Asend = Causalb_core.Asend

let prop_timestamp_identical_orders =
  test "timestamp orderer: identical sequences for any workload" ~count:40
    QCheck2.Gen.(
      triple (int_range 0 9_999) (int_range 2 6) (int_range 1 40))
    (fun (seed, nodes, msgs) ->
      let e = Engine.create ~seed () in
      let net =
        Net.create e ~nodes
          ~latency:(Latency.lognormal ~mu:0.5 ~sigma:1.2 ())
          ~fifo:true ()
      in
      let ts = Asend.Timestamp.create net () in
      for i = 0 to msgs - 1 do
        Engine.schedule_at e ~time:(float_of_int i *. 0.6) (fun () ->
            Asend.Timestamp.bcast ts ~src:(i mod nodes) ~tag:(string_of_int i) ())
      done;
      Engine.run e;
      let orders = List.init nodes (Asend.Timestamp.delivered_tags ts) in
      List.length (List.hd orders) = msgs
      && List.for_all (( = ) (List.hd orders)) orders)

let prop_merge_identical_orders =
  test "merge orderer: identical batch order for any bracket" ~count:40
    QCheck2.Gen.(pair (int_range 0 9_999) (int_range 1 20))
    (fun (seed, spont) ->
      let merges =
        List.init 3 (fun _ ->
            Asend.Merge.create
              ~is_sync:(fun m -> Causalb_core.Message.payload m = -1)
              ())
      in
      let e = Engine.create ~seed () in
      let net =
        Net.create e ~nodes:3
          ~latency:(Latency.lognormal ~mu:0.5 ~sigma:1.2 ())
          ~fifo:false ()
      in
      let g =
        Group.create net
          ~on_deliver:(fun ~node ~time:_ m ->
            Asend.Merge.on_causal_deliver (List.nth merges node) m)
          ()
      in
      let labels =
        List.init spont (fun i -> Group.osend g ~src:(i mod 3) ~dep:Dep.null i)
      in
      ignore (Group.osend g ~src:0 ~dep:(Dep.after_all labels) (-1));
      Engine.run e;
      let orders = List.map Asend.Merge.total_order merges in
      List.length (List.hd orders) = spont + 1
      && Checker.identical_orders orders)

(* The interchangeability claim behind the stack's total-order layers:
   over the same bracketed set, the sync-anchored Merge (sync fed last,
   as causal delivery guarantees — the sync AND-depends on the whole set)
   and the count-closed Counted release the IDENTICAL total order at
   every member, whatever arrival permutation each member saw.  The sync
   label is made the comparator's maximum so both mechanisms place it
   last. *)
let prop_merge_counted_agree_under_permutations =
  let gen =
    let open QCheck2.Gen in
    int_range 1 12 >>= fun n ->
    let spont_perm = shuffle_l (List.init n Fun.id) in
    let all_perm = shuffle_l (List.init (n + 1) Fun.id) in
    triple (return n) (list_repeat 3 spont_perm) (list_repeat 3 all_perm)
  in
  test "merge and counted: same total order under any arrival permutation"
    ~count:200 gen
    (fun (n, merge_perms, counted_perms) ->
      let spont_label i = Label.make ~origin:(i mod 3) ~seq:(i / 3) () in
      let spont =
        List.init n (fun i ->
            Message.make ~label:(spont_label i) ~sender:(i mod 3)
              ~dep:Dep.null i)
      in
      let sync =
        Message.make
          ~label:(Label.make ~origin:999 ~seq:0 ())
          ~sender:0
          ~dep:(Dep.after_all (List.map Message.label spont))
          (-1)
      in
      let all = spont @ [ sync ] in
      let merge_orders =
        List.map
          (fun perm ->
            let m =
              Asend.Merge.create
                ~is_sync:(fun m -> Causalb_core.Message.payload m = -1)
                ()
            in
            List.iter
              (fun i -> Asend.Merge.on_causal_deliver m (List.nth spont i))
              perm;
            Asend.Merge.on_causal_deliver m sync;
            Asend.Merge.total_order m)
          merge_perms
      in
      let counted_orders =
        List.map
          (fun perm ->
            let c = Asend.Counted.create ~batch_size:(n + 1) () in
            List.iter
              (fun i -> Asend.Counted.on_causal_deliver c (List.nth all i))
              perm;
            Asend.Counted.total_order c)
          counted_perms
      in
      let orders = merge_orders @ counted_orders in
      List.for_all (fun o -> List.length o = n + 1) orders
      && Checker.identical_orders orders)

(* --- inference properties --- *)

module Infer = Causalb_graph.Infer

let prop_infer_sound_on_linearizations =
  test "inference from linearizations is sound; exact with all of them"
    ~count:100 dag_gen (fun desc ->
      let g = build_graph desc in
      let all = Depgraph.linearizations ~limit:200 g in
      let inferred = Infer.infer all in
      Infer.over_approximation ~truth:g inferred
      && (List.length all >= 200
         || Depgraph.count_linearizations ~cap:201 g > 200
         || Infer.exact ~truth:g inferred))

let prop_infer_sound_on_network_observations =
  test "inference from member delivery orders is sound" ~count:40
    QCheck2.Gen.(pair (int_range 0 9_999) dag_gen)
    (fun (seed, ((_, deps, _) as desc)) ->
      let e = Engine.create ~seed () in
      let net =
        Net.create e ~nodes:4
          ~latency:(Latency.lognormal ~mu:0.5 ~sigma:1.3 ())
          ~fifo:false ()
      in
      let g = Group.create net () in
      List.iteri
        (fun i d ->
          Engine.schedule_at e ~time:(float_of_int i *. 0.3) (fun () ->
              ignore
                (Group.send_labelled g ~src:(i mod 4) ~label:(label_of_index i)
                   ~dep:(Dep.after_all (List.map label_of_index d))
                   i)))
        deps;
      Engine.run e;
      let truth = build_graph desc in
      let inferred = Infer.infer (Group.all_delivered_orders g) in
      Infer.over_approximation ~truth inferred)

(* --- workflow properties --- *)

module Workflow = Causalb_data.Workflow

let prop_workflow_orders_respect_declared_dag =
  test "random workflow: every member's order extends the declared DAG"
    ~count:40
    QCheck2.Gen.(pair (int_range 0 9_999) dag_gen)
    (fun (seed, (n, deps, _)) ->
      let steps =
        List.mapi
          (fun i d ->
            Workflow.step
              (Printf.sprintf "s%d" i)
              ~src:(i mod 3)
              ~after:(List.map (Printf.sprintf "s%d") d)
              i)
          deps
      in
      ignore n;
      let e = Engine.create ~seed () in
      let net =
        Net.create e ~nodes:3
          ~latency:(Latency.lognormal ~mu:0.5 ~sigma:1.2 ())
          ~fifo:false ()
      in
      let g = Group.create net () in
      ignore (Workflow.submit g steps);
      Engine.run e;
      let orders = Group.all_delivered_orders g in
      let graph = Causalb_core.Osend.graph (Group.member g 0) in
      Checker.same_set orders
      && Checker.causal_safety_all graph orders)

(* --- reliability and membership properties --- *)

module Rgroup = Causalb_core.Rgroup
module Vgroup = Causalb_core.Vgroup
module Fault = Causalb_net.Fault

let prop_rgroup_liveness_under_random_loss =
  test "rgroup: random loss rates still deliver everything" ~count:25
    QCheck2.Gen.(pair (int_range 0 5_000) (float_bound_inclusive 0.4))
    (fun (seed, drop) ->
      let e = Engine.create ~seed () in
      let net =
        Net.create e ~nodes:3
          ~fault:(Fault.make ~drop_prob:drop ())
          ~latency:(Latency.lognormal ~mu:0.3 ~sigma:0.6 ())
          ()
      in
      let g = Rgroup.create net () in
      Rgroup.enable_heartbeat g ~period:10.0 ~until:2_000.0;
      let prev = ref Dep.null in
      for i = 0 to 24 do
        Engine.schedule_at e ~time:(float_of_int i *. 0.5) (fun () ->
            let lbl = Rgroup.osend g ~src:(i mod 3) ~dep:!prev i in
            prev := Dep.after lbl)
      done;
      Engine.run e;
      List.for_all
        (fun o -> List.length o = 25)
        (Rgroup.all_delivered_orders g))

let prop_vgroup_churn_safety =
  test "vgroup: random join/leave churn keeps virtual synchrony" ~count:25
    QCheck2.Gen.(
      pair (int_range 0 5_000) (list_size (int_range 1 4) (int_range 0 5)))
    (fun (seed, churn) ->
      let e = Engine.create ~seed () in
      let net =
        Net.create e ~nodes:6
          ~latency:(Latency.lognormal ~mu:0.3 ~sigma:0.6 ())
          ~fifo:false ()
      in
      let g = Vgroup.create net ~initial:[ 0; 1 ] ~get_state:(fun ~node:_ -> ()) () in
      (* background traffic *)
      for i = 0 to 29 do
        Engine.schedule_at e ~time:(float_of_int i *. 0.7) (fun () ->
            let src = i mod 6 in
            if Vgroup.is_member g src then Vgroup.bcast g ~src i)
      done;
      (* churn: toggle membership of the listed nodes (never node 0, so a
         coordinator always survives) *)
      List.iteri
        (fun k node ->
          let node = 1 + (node mod 5) in
          Engine.schedule_at e ~time:(5.0 +. (float_of_int k *. 12.0))
            (fun () ->
              if Vgroup.is_member g node then Vgroup.leave g ~node
              else Vgroup.join g ~node))
        churn;
      Engine.run e;
      Vgroup.check_views_agree g && Vgroup.check_virtual_synchrony g)

module Dservice = Causalb_data.Dservice

let prop_dservice_churn_consistency =
  test "dservice: join/leave churn keeps all data checks green" ~count:20
    QCheck2.Gen.(
      pair (int_range 0 5_000) (list_size (int_range 1 3) (int_range 0 4)))
    (fun (seed, churn) ->
      let e = Engine.create ~seed () in
      let svc =
        Dservice.create e ~nodes:6 ~initial:[ 0; 1 ]
          ~machine:Dt.Int_register.machine
          ~latency:(Latency.lognormal ~mu:0.4 ~sigma:0.8 ())
          ()
      in
      for i = 0 to 29 do
        Engine.schedule_at e ~time:(float_of_int i *. 0.7) (fun () ->
            let src = i mod 6 in
            if Dservice.is_member svc src then
              let op =
                if i mod 9 = 8 then Dt.Int_register.Read
                else Dt.Int_register.Inc 1
              in
              Dservice.submit svc ~src op)
      done;
      List.iteri
        (fun k node ->
          let node = 1 + (node mod 5) in
          Engine.schedule_at e ~time:(6.0 +. (float_of_int k *. 14.0))
            (fun () ->
              if Dservice.is_member svc node then Dservice.leave svc ~node
              else Dservice.join svc ~node))
        churn;
      Dservice.run svc;
      List.for_all snd (Dservice.check svc))

let () =
  Alcotest.run "props"
    [
      ( "heap",
        [ prop_heap_sorts; prop_heap_pop_min ] );
      ( "stats",
        [ prop_stats_bounds; prop_stats_median_rank ] );
      ( "vector-clock",
        [
          prop_vc_leq_reflexive;
          prop_vc_leq_antisymmetric;
          prop_vc_leq_transitive;
          prop_vc_merge_lub;
          prop_vc_concurrent_symmetric;
          prop_vc_compare_consistent;
        ] );
      ( "depgraph",
        [
          prop_graph_topological_valid;
          prop_graph_linearizations_valid;
          prop_graph_happens_before_irreflexive_antisym;
          prop_graph_sync_point_total;
        ] );
      ( "osend",
        [ prop_osend_any_arrival_order_safe; prop_osend_graph_matches ] );
      ("group", [ prop_group_network_safety ]);
      ( "total-order",
        [
          prop_timestamp_identical_orders;
          prop_merge_identical_orders;
          prop_merge_counted_agree_under_permutations;
        ] );
      ( "inference",
        [
          prop_infer_sound_on_linearizations;
          prop_infer_sound_on_network_observations;
        ] );
      ("workflow", [ prop_workflow_orders_respect_declared_dag ]);
      ( "reliability",
        [
          prop_rgroup_liveness_under_random_loss;
          prop_vgroup_churn_safety;
          prop_dservice_churn_consistency;
        ] );
      ( "commutativity",
        [
          prop_commutative_ops_transition_preserving;
          prop_commute_at_symmetric;
        ] );
    ]
