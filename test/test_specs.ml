(* The sequential-spec object layer: Cid/Ncid derivation, the shared
   window bookkeeping, the commute lint, and qcheck convergence — the
   same operation multiset applied in any causally-consistent order
   (permutations within each §6.1 window) reaches equal states and
   equal canonical digests. *)

module Label = Causalb_graph.Label
module Op = Causalb_data.Op
module Seq_spec = Causalb_data.Seq_spec
module Sm = Causalb_data.State_machine
module Dt = Causalb_data.Datatypes
module Objects = Causalb_data.Objects
module Window = Causalb_data.Window
module Commute_lint = Causalb_data.Commute_lint
module Workflow = Causalb_data.Workflow

let check = Alcotest.check Alcotest.bool

let check_int = Alcotest.check Alcotest.int

(* --- derivation ------------------------------------------------------- *)

let cid spec = Seq_spec.cid_classes spec

let test_derived_cid_sets () =
  Alcotest.(check (list string))
    "int register" [ "inc"; "dec" ]
    (cid Dt.Int_register.spec);
  Alcotest.(check (list string))
    "kv store discovers del/del" [ "del"; "qry" ] (cid Dt.Kv_store.spec);
  Alcotest.(check (list string)) "document" [ "annotate" ] (cid (Dt.Document.spec ~sections:2));
  Alcotest.(check (list string)) "bank" [ "deposit"; "withdraw" ]
    (cid Dt.Bank_account.spec);
  Alcotest.(check (list string)) "or-set" [ "add" ] (cid Objects.Or_set.spec);
  Alcotest.(check (list string))
    "lww-map: all mutators" [ "put"; "remove" ] (cid Objects.Lww_map.spec);
  Alcotest.(check (list string))
    "rga: both mutators" [ "insert"; "delete" ] (cid Objects.Rga.spec)

let test_derived_kinds_match_hand_marking () =
  (* the labelings the pre-spec code hand-marked, now derived *)
  let k spec op = Seq_spec.kind spec op in
  check "inc Cid" true (k Dt.Int_register.spec (Dt.Int_register.Inc 1) = Op.Commutative);
  check "set Ncid" true
    (k Dt.Int_register.spec (Dt.Int_register.Set 3) = Op.Non_commutative);
  check "read Ncid (observer)" true
    (k Dt.Int_register.spec Dt.Int_register.Read = Op.Non_commutative);
  check "qry Cid" true
    (k Dt.Kv_store.spec (Dt.Kv_store.Qry "x") = Op.Commutative);
  check "upd Ncid" true
    (k Dt.Kv_store.spec (Dt.Kv_store.Upd ("x", "1")) = Op.Non_commutative);
  check "audit Ncid" true
    (k Dt.Bank_account.spec Dt.Bank_account.Audit = Op.Non_commutative)

let test_make_validation () =
  let raises f =
    match f () with exception Invalid_argument _ -> true | _ -> false
  in
  check "empty classes rejected" true
    (raises (fun () ->
         Seq_spec.make ~name:"x" ~init:0 ~apply:(fun s _ -> s)
           ~equal:Int.equal ~classes:[] ~class_of:(fun _ -> "a")
           ~commutes:(fun _ _ -> true) ()));
  check "duplicate class rejected" true
    (raises (fun () ->
         Seq_spec.make ~name:"x" ~init:0 ~apply:(fun s _ -> s)
           ~equal:Int.equal ~classes:[ "a"; "a" ] ~class_of:(fun _ -> "a")
           ~commutes:(fun _ _ -> true) ()));
  check "asymmetric relation rejected" true
    (raises (fun () ->
         Seq_spec.make ~name:"x" ~init:0 ~apply:(fun s _ -> s)
           ~equal:Int.equal ~classes:[ "a"; "b" ] ~class_of:(fun _ -> "a")
           ~commutes:(fun x y -> x = "a" && y = "b") ()))

let test_machine_from_spec () =
  let m = Seq_spec.to_machine Dt.Int_register.spec in
  check "apply" true (m.Sm.apply 3 (Dt.Int_register.Inc 4) = 7);
  check "kind derived" true (m.Sm.kind Dt.Int_register.Read = Op.Non_commutative);
  check_int "digest = canonical digest" (m.Sm.digest 42)
    (Dt.Int_register.spec.Seq_spec.digest 42)

(* --- the commute lint ------------------------------------------------- *)

let test_lint_suite_clean () =
  List.iter
    (fun r ->
      check
        (Format.asprintf "%a" Commute_lint.pp_report r)
        true (Commute_lint.ok r))
    (Commute_lint.suite ~seed:7)

let test_lint_catches_lie () =
  let lying =
    Seq_spec.make ~name:"lying" ~init:0
      ~apply:(fun s op -> match op with `Inc n -> s + n | `Set n -> n)
      ~equal:Int.equal
      ~classes:[ "inc"; "set" ]
      ~class_of:(function `Inc _ -> "inc" | `Set _ -> "set")
      ~commutes:(fun _ _ -> true)
      ()
  in
  (* the greedy derivation believes the relation … *)
  Alcotest.(check (list string)) "lie derives both" [ "inc"; "set" ]
    (Seq_spec.cid_classes lying);
  (* … and the lint catches it *)
  let module Rng = Causalb_util.Rng in
  let gen r = if Rng.bool r then `Inc (1 + Rng.int r 9) else `Set (Rng.int r 50) in
  let r = Commute_lint.check lying ~gen_op:gen ~seed:7 () in
  check "violations found" true (r.Commute_lint.violations <> [])

(* --- the shared window ------------------------------------------------ *)

let lbl i = Label.make ~origin:0 ~seq:i ()

let test_window_deps () =
  let w = Window.create () in
  Alcotest.(check (list bool)) "fresh: no deps" []
    (List.map (fun _ -> true)
       (Window.deps_for w ~kind:Op.Commutative ~fallback:[]));
  (* fallback anchors both kinds when nothing was noted *)
  check "fallback used" true
    (Window.deps_for w ~kind:Op.Commutative ~fallback:[ lbl 99 ] = [ lbl 99 ]);
  check "fallback used (sync)" true
    (Window.deps_for w ~kind:Op.Non_commutative ~fallback:[ lbl 99 ]
    = [ lbl 99 ]);
  (* Cid ops join the window; they all anchor on the last sync *)
  Window.note w ~kind:Op.Non_commutative (lbl 0);
  Window.note w ~kind:Op.Commutative (lbl 1);
  Window.note w ~kind:Op.Commutative (lbl 2);
  check "cid after last sync" true
    (Window.deps_for w ~kind:Op.Commutative ~fallback:[] = [ lbl 0 ]);
  check "sync closes whole window" true
    (Window.deps_for w ~kind:Op.Non_commutative ~fallback:[]
    = [ lbl 1; lbl 2 ]);
  check_int "size" 2 (Window.size w);
  (* noting the sync resets the window and bumps the cycle count *)
  Window.note w ~kind:Op.Non_commutative (lbl 3);
  check_int "window reset" 0 (Window.size w);
  check_int "syncs" 2 (Window.syncs w);
  check "new anchor" true
    (Window.deps_for w ~kind:Op.Commutative ~fallback:[] = [ lbl 3 ]);
  (* empty window: a sync falls back to the last sync *)
  check "sync on empty window" true
    (Window.deps_for w ~kind:Op.Non_commutative ~fallback:[] = [ lbl 3 ]);
  Window.reset w;
  check "reset forgets labels" true
    (Window.deps_for w ~kind:Op.Non_commutative ~fallback:[] = []);
  check_int "reset keeps syncs" 2 (Window.syncs w)

(* --- Workflow.of_ops: the §6.1 DAG from derived kinds ----------------- *)

let test_workflow_of_ops () =
  let open Dt.Int_register in
  let steps =
    Workflow.of_ops ~machine ~src:(fun i -> i mod 3)
      [ Inc 1; Inc 2; Read; Inc 3; Read ]
  in
  let g = Workflow.graph_of steps in
  (* op0,op1 concurrent; op2 closes them; op3 after op2; op4 after op3 *)
  let module Depgraph = Causalb_graph.Depgraph in
  check_int "labels" 5 (List.length (Depgraph.labels g));
  let parents name =
    let l =
      List.find
        (fun l -> Label.name l = name)
        (Depgraph.labels g)
    in
    List.sort compare (List.map Label.name (Depgraph.parents g l))
  in
  Alcotest.(check (list string)) "op0 roots" [] (parents "op0");
  Alcotest.(check (list string)) "op1 roots" [] (parents "op1");
  Alcotest.(check (list string)) "read closes window" [ "op0"; "op1" ]
    (parents "op2");
  Alcotest.(check (list string)) "next window anchors" [ "op2" ] (parents "op3");
  Alcotest.(check (list string)) "empty-window sync" [ "op3" ] (parents "op4")

(* --- qcheck convergence ----------------------------------------------- *)

(* Causally-consistent reorderings of a §6.1 run: operations permute
   freely inside their window, sync points stay put.  Convergence =
   equal final state and equal canonical digest whatever the
   permutation. *)

let qtest ?(count = 120) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* rounds of (window ops, closing sync), plus a permutation seed *)
let rounds_gen cid_gen sync_gen =
  let open QCheck2.Gen in
  list_size (int_range 1 6)
    (pair (list_size (int_range 0 8) cid_gen) sync_gen)
  >>= fun rounds ->
  int >|= fun perm_seed -> (rounds, perm_seed)

let permute_within_rounds ~perm_seed rounds =
  let rng = Causalb_util.Rng.create perm_seed in
  List.concat_map
    (fun (window, sync) ->
      let arr = Array.of_list window in
      Causalb_util.Rng.shuffle rng arr;
      Array.to_list arr @ [ sync ])
    rounds

let converges (spec : _ Seq_spec.t) (rounds, perm_seed) =
  (* every window op must be Cid — drop any the derivation made Ncid so
     the reordering stays causally consistent *)
  let rounds =
    List.map
      (fun (w, s) -> (List.filter (Seq_spec.is_cid spec) w, s))
      rounds
  in
  let a = List.concat_map (fun (w, s) -> w @ [ s ]) rounds in
  let b = permute_within_rounds ~perm_seed rounds in
  let run ops = List.fold_left spec.Seq_spec.apply spec.Seq_spec.init ops in
  let sa = run a and sb = run b in
  spec.Seq_spec.equal sa sb
  && spec.Seq_spec.digest sa = spec.Seq_spec.digest sb

let counter_convergence =
  let open QCheck2.Gen in
  qtest "counter: window perms converge"
    (rounds_gen
       (int_range (-9) 9 >|= fun n -> Objects.Counter.Add n)
       (return Objects.Counter.Value))
    (converges Objects.Counter.spec)

let or_set_convergence =
  let open QCheck2.Gen in
  let elt = oneofl [ "a"; "b"; "c" ] in
  qtest "or-set: window perms converge"
    (rounds_gen
       (pair elt (int_range 0 1000) >|= fun (e, t) -> Objects.Or_set.Add (e, t))
       (oneof
          [
            (elt >|= fun e -> Objects.Or_set.Remove e);
            return Objects.Or_set.Elements;
          ]))
    (converges Objects.Or_set.spec)

let lww_convergence =
  let open QCheck2.Gen in
  let key = oneofl [ "k1"; "k2" ] in
  let mut =
    oneof
      [
        ( pair key (pair (int_range 0 50) (int_range 0 3)) >|= fun (key, (ts, src)) ->
          Objects.Lww_map.Put { key; ts; src; value = Printf.sprintf "%d.%d" ts src } );
        ( pair key (pair (int_range 0 50) (int_range 0 3)) >|= fun (key, (ts, src)) ->
          Objects.Lww_map.Remove { key; ts; src } );
      ]
  in
  qtest "lww-map: window perms converge"
    (rounds_gen mut (key >|= fun k -> Objects.Lww_map.Get k))
    (converges Objects.Lww_map.spec)

let rga_convergence =
  let open QCheck2.Gen in
  (* ops derived from one int each: colliding ids carry identical
     payloads, mirroring the uniqueness invariant of real clients *)
  let mut =
    int_range 0 10_000 >|= fun n ->
    if n mod 7 = 0 then Objects.Rga.Delete (n mod 13, n mod 4)
    else
      let seq = n mod 97 and src = n mod 5 in
      let after = if seq mod 3 = 0 then None else Some (seq mod 13, src) in
      Objects.Rga.Insert
        {
          id = (seq, src);
          after;
          ch = String.make 1 (Char.chr (97 + ((seq * 7) + src) mod 26));
        }
  in
  qtest "rga: window perms converge" (rounds_gen mut (return Objects.Rga.Read))
    (converges Objects.Rga.spec)

let kv_convergence =
  let open QCheck2.Gen in
  let key = oneofl [ "a"; "b"; "c" ] in
  qtest "kv-store: window perms converge"
    (rounds_gen
       (oneof
          [
            (key >|= fun k -> Dt.Kv_store.Del k);
            (key >|= fun k -> Dt.Kv_store.Qry k);
          ])
       (pair key (int_range 0 9) >|= fun (k, v) ->
        Dt.Kv_store.Upd (k, string_of_int v)))
    (converges Dt.Kv_store.spec)

(* The end-to-end form: the same multiset through the real service under
   different delivery interleavings (different seeds) reaches the same
   stable digests — exercised via the harness driver. *)
let test_end_to_end_digests () =
  let module Drivers = Causalb_harness.Drivers in
  let subs = Drivers.editing_workload ~replicas:3 ~rounds:6 ~window:4 () in
  List.iter
    (fun seed ->
      let r =
        Drivers.run_object ~seed ~replicas:3 ~machine:Objects.Rga.machine subs
      in
      check (Printf.sprintf "seed %d clean" seed) true (Drivers.object_ok r))
    [ 1; 2; 3 ]

let () =
  Alcotest.run "specs"
    [
      ( "derivation",
        [
          Alcotest.test_case "cid sets" `Quick test_derived_cid_sets;
          Alcotest.test_case "kinds match hand-marking" `Quick
            test_derived_kinds_match_hand_marking;
          Alcotest.test_case "make validation" `Quick test_make_validation;
          Alcotest.test_case "machine from spec" `Quick test_machine_from_spec;
        ] );
      ( "lint",
        [
          Alcotest.test_case "suite clean" `Quick test_lint_suite_clean;
          Alcotest.test_case "catches mislabeled relation" `Quick
            test_lint_catches_lie;
        ] );
      ("window", [ Alcotest.test_case "deps and notes" `Quick test_window_deps ]);
      ( "workflow",
        [ Alcotest.test_case "of_ops derives the DAG" `Quick test_workflow_of_ops ] );
      ( "convergence",
        [
          counter_convergence;
          or_set_convergence;
          lww_convergence;
          rga_convergence;
          kv_convergence;
          Alcotest.test_case "end-to-end stable digests" `Quick
            test_end_to_end_digests;
        ] );
    ]
