(* Tests for the composable ordering stack (lib/stack): same-seed
   equivalence with the standalone engines, composition behaviour of the
   total-order layers, uniform per-layer metrics, and partition/heal
   recovery through the stack. *)

module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Net = Causalb_net.Net
module Label = Causalb_graph.Label
module Dep = Causalb_graph.Dep
module Message = Causalb_core.Message
module Osend = Causalb_core.Osend
module Group = Causalb_core.Group
module Bss = Causalb_core.Bss
module Fifo = Causalb_core.Fifo
module Asend = Causalb_core.Asend
module Checker = Causalb_core.Checker
module Stack = Causalb_stack.Stack
module Metrics = Causalb_stackbase.Metrics

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let labels_testable =
  Alcotest.testable (Fmt.Dump.list Label.pp) (List.equal Label.equal)

let latency = Latency.lognormal ~mu:0.5 ~sigma:1.0 ()

(* The shared workload of the equivalence tests: [n_ops] submissions,
   round-robin across [nodes], one every 0.4 time units.  Every fourth
   op is a sync that AND-closes the preceding window (the §6.1 shape);
   the others follow the last sync.  [submit i dep] performs the
   submission and returns the label when the engine allocates one. *)
let nodes = 3

let n_ops = 24

let drive engine submit =
  let last_sync = ref None in
  let window = ref [] in
  let step i =
    let sync = i mod 4 = 3 in
    let dep =
      if sync && !window <> [] then Dep.after_all (List.rev !window)
      else match !last_sync with None -> Dep.null | Some l -> Dep.after l
    in
    match submit i ~sync ~dep with
    | None -> ()
    | Some label ->
      if sync then begin
        last_sync := Some label;
        window := []
      end
      else window := label :: !window
  in
  for i = 0 to n_ops - 1 do
    Engine.schedule_at engine ~time:(float_of_int i *. 0.4) (fun () -> step i)
  done;
  Engine.run engine

let causal_row stack =
  List.find
    (fun (m : Metrics.t) ->
      String.length m.Metrics.name >= 6 && String.sub m.Metrics.name 0 6 = "causal")
    (Stack.metrics stack)

(* --- same-seed equivalence: stack vs standalone engines --- *)

(* transport -> fifo: per-node delivery counts and forced waits must
   match a hand-wired [Fifo.Group] on the same seed. *)
let test_stack_matches_standalone_fifo () =
  let run_stack () =
    let engine = Engine.create ~seed:7 () in
    let stack =
      Stack.compose ~ordering:Stack.Fifo ~latency ~fifo:false engine
        ~nodes ()
    in
    drive engine (fun i ~sync:_ ~dep ->
        Stack.submit stack ~src:(i mod nodes) ~dep (i * 10));
    ( List.init nodes (Stack.delivered_count stack),
      (causal_row stack).Metrics.forced_waits,
      Stack.messages_sent stack )
  in
  let run_standalone () =
    let engine = Engine.create ~seed:7 () in
    let net = Net.create engine ~nodes ~latency ~fifo:false () in
    let group = Fifo.Group.create net () in
    drive engine (fun i ~sync:_ ~dep:_ ->
        Fifo.Group.bcast group ~src:(i mod nodes) (i * 10);
        None);
    ( List.init nodes (fun n ->
          Fifo.delivered_count (Fifo.Group.member group n)),
      List.fold_left
        (fun acc n -> acc + Fifo.buffered_ever (Fifo.Group.member group n))
        0
        (List.init nodes Fun.id),
      Net.messages_sent net )
  in
  let sd, sw, sm = run_stack () in
  let dd, dw, dm = run_standalone () in
  Alcotest.(check (list int)) "delivered per node" dd sd;
  check_int "forced waits" dw sw;
  check_int "messages" dm sm

(* transport -> bss: same comparison against a hand-wired [Bss.Group]. *)
let test_stack_matches_standalone_bss () =
  let run_stack () =
    let engine = Engine.create ~seed:11 () in
    let stack =
      Stack.compose ~ordering:Stack.Bss ~latency ~fifo:false engine ~nodes ()
    in
    drive engine (fun i ~sync:_ ~dep ->
        Stack.submit stack ~src:(i mod nodes) ~dep (i * 10));
    ( List.init nodes (Stack.delivered_count stack),
      (causal_row stack).Metrics.forced_waits )
  in
  let run_standalone () =
    let engine = Engine.create ~seed:11 () in
    let net = Net.create engine ~nodes ~latency ~fifo:false () in
    let group = Bss.Group.create net () in
    drive engine (fun i ~sync:_ ~dep:_ ->
        Bss.Group.bcast group ~src:(i mod nodes) (i * 10);
        None);
    ( List.init nodes (fun n -> Bss.delivered_count (Bss.Group.member group n)),
      List.fold_left
        (fun acc n -> acc + Bss.buffered_ever (Bss.Group.member group n))
        0
        (List.init nodes Fun.id) )
  in
  let sd, sw = run_stack () in
  let dd, dw = run_standalone () in
  Alcotest.(check (list int)) "delivered per node" dd sd;
  check_int "forced waits" dw sw

(* transport -> osend: per-node delivery ORDER (not just counts) must
   match a hand-wired [Group] given the identical dependency script. *)
let test_stack_matches_standalone_osend () =
  let run_stack () =
    let engine = Engine.create ~seed:13 () in
    let stack =
      Stack.compose ~ordering:Stack.Osend ~latency ~fifo:false engine
        ~nodes ()
    in
    drive engine (fun i ~sync:_ ~dep ->
        Stack.submit stack ~src:(i mod nodes) ~dep (i * 10));
    (Stack.all_delivered_orders stack, (causal_row stack).Metrics.forced_waits)
  in
  let run_standalone () =
    let engine = Engine.create ~seed:13 () in
    let net = Net.create engine ~nodes ~latency ~fifo:false () in
    let group = Group.create net () in
    drive engine (fun i ~sync:_ ~dep ->
        Some (Group.osend group ~src:(i mod nodes) ~dep (i * 10)));
    ( Group.all_delivered_orders group,
      List.fold_left
        (fun acc n ->
          acc + (Osend.metrics (Group.member group n)).Metrics.forced_waits)
        0
        (List.init nodes Fun.id) )
  in
  let so, sw = run_stack () in
  let go, gw = run_standalone () in
  List.iteri
    (fun n order ->
      Alcotest.check labels_testable
        (Printf.sprintf "order at node %d" n)
        (List.nth go n) order)
    so;
  check_int "forced waits" gw sw

(* transport -> osend -> merge: the released total order at every member
   must match hand-wired [Group] + per-member [Asend.Merge]. *)
let test_stack_matches_standalone_merge () =
  let run_stack () =
    let engine = Engine.create ~seed:19 () in
    let stack =
      Stack.compose ~ordering:Stack.Osend
        ~total:(Stack.Merge (fun m -> Message.payload m mod 4 = 3))
        ~latency ~fifo:false engine ~nodes ()
    in
    drive engine (fun i ~sync:_ ~dep ->
        Stack.submit stack ~src:(i mod nodes) ~dep i);
    Stack.all_delivered_orders stack
  in
  let run_standalone () =
    let engine = Engine.create ~seed:19 () in
    let net = Net.create engine ~nodes ~latency ~fifo:false () in
    let merges = ref [||] in
    let group =
      Group.create net
        ~on_deliver:(fun ~node ~time:_ msg ->
          Asend.Merge.on_causal_deliver !merges.(node) msg)
        ()
    in
    merges :=
      Array.init nodes (fun _ ->
          Asend.Merge.create
            ~is_sync:(fun m -> Message.payload m mod 4 = 3)
            ());
    drive engine (fun i ~sync:_ ~dep ->
        Some (Group.osend group ~src:(i mod nodes) ~dep i));
    Array.to_list (Array.map Asend.Merge.total_order !merges)
  in
  let so = run_stack () in
  let go = run_standalone () in
  check "identical at all members" true (Checker.identical_orders so);
  List.iteri
    (fun n order ->
      Alcotest.check labels_testable
        (Printf.sprintf "total order at node %d" n)
        (List.nth go n) order)
    so

(* --- composition behaviour --- *)

let test_sequencer_composition () =
  let engine = Engine.create ~seed:23 () in
  let stack =
    Stack.compose ~ordering:Stack.Osend
      ~total:(Stack.Sequencer { node = 0 })
      ~latency ~fifo:false engine ~nodes ()
  in
  drive engine (fun i ~sync:_ ~dep ->
      Stack.submit stack ~src:(i mod nodes) ~dep i);
  let orders = Stack.all_delivered_orders stack in
  check "identical orders" true (Checker.identical_orders orders);
  check_int "all released" n_ops (List.length (List.hd orders));
  check_int "three layers"
    3 (List.length (Stack.metrics stack))

let test_sequencer_requires_osend () =
  let engine = Engine.create ~seed:1 () in
  Alcotest.check_raises "sequencer over bss rejected"
    (Invalid_argument
       "Stack.compose: a sequencer needs the explicit-dependency causal \
        layer (ordering = Osend)")
    (fun () ->
      ignore
        (Stack.compose ~ordering:Stack.Bss
           ~total:(Stack.Sequencer { node = 0 })
           engine ~nodes ()
          : int Stack.t))

let test_counted_composition () =
  let engine = Engine.create ~seed:29 () in
  let stack =
    Stack.compose ~ordering:Stack.Osend ~total:(Stack.Counted n_ops) ~latency
      ~fifo:false engine ~nodes ()
  in
  drive engine (fun i ~sync:_ ~dep ->
      Stack.submit stack ~src:(i mod nodes) ~dep i);
  let orders = Stack.all_delivered_orders stack in
  check "identical orders" true (Checker.identical_orders orders);
  check_int "one full batch" n_ops (List.length (List.hd orders))

let test_describe () =
  let engine = Engine.create ~seed:1 () in
  let s1 = Stack.compose ~ordering:Stack.Fifo engine ~nodes:2 () in
  Alcotest.(check string)
    "fifo description" "transport -> causal:fifo -> app" (Stack.describe s1);
  let engine = Engine.create ~seed:1 () in
  let s2 =
    Stack.compose ~ordering:Stack.Osend
      ~total:(Stack.Merge (fun (_ : int Message.t) -> false))
      engine ~nodes:2 ()
  in
  Alcotest.(check string)
    "merge description" "transport -> causal:osend -> total:merge -> app"
    (Stack.describe s2)

(* Every layer's metrics balance after a drained run: received =
   delivered (nothing held), and the transport row sits at the bottom. *)
let test_metrics_balance () =
  List.iter
    (fun ordering ->
      let engine = Engine.create ~seed:31 () in
      let stack =
        Stack.compose ~ordering ~latency ~fifo:false engine ~nodes ()
      in
      drive engine (fun i ~sync:_ ~dep ->
          Stack.submit stack ~src:(i mod nodes) ~dep i);
      let rows = Stack.metrics stack in
      Alcotest.(check string)
        "transport first" "transport" (List.hd rows).Metrics.name;
      List.iter
        (fun (m : Metrics.t) ->
          check_int
            (Printf.sprintf "%s drained" m.Metrics.name)
            m.Metrics.received m.Metrics.delivered;
          check_int (Printf.sprintf "%s held" m.Metrics.name) 0
            m.Metrics.buffered)
        rows)
    [ Stack.Fifo; Stack.Bss; Stack.Osend ]

(* The two-line Fig. 4 composition from the docs: build and run it. *)
let test_fig4_two_liner () =
  let engine = Engine.create ~seed:3 () in
  let stack =
    Stack.compose ~total:(Stack.Counted 4) engine ~nodes:4 ()
  in
  for i = 0 to 3 do
    Engine.schedule_at engine ~time:(float_of_int i) (fun () ->
        ignore (Stack.submit stack ~src:i ~dep:Dep.null i))
  done;
  Stack.run stack;
  check "identical orders" true
    (Checker.identical_orders (Stack.all_delivered_orders stack))

(* --- partition / heal through the stack --- *)

(* A partition swallows m1's copies to the minority side; a later m2
   depending on m1 then blocks there with [blocked_on = [m1]].  After
   heal, re-injecting m1 through the exposed OSend group (the recovery
   path) releases everything. *)
let test_partition_heal_blocked_on () =
  let engine = Engine.create ~seed:37 () in
  let stack =
    Stack.compose ~ordering:Stack.Osend ~latency ~fifo:false engine ~nodes ()
  in
  let m1 = ref None in
  let m2 = ref None in
  Engine.schedule_at engine ~time:0.0 (fun () ->
      Stack.partition stack [ [ 0 ]; [ 1; 2 ] ]);
  Engine.schedule_at engine ~time:1.0 (fun () ->
      m1 := Stack.submit stack ~src:0 ~dep:Dep.null "m1");
  Engine.schedule_at engine ~time:100.0 (fun () -> Stack.heal stack);
  Engine.schedule_at engine ~time:101.0 (fun () ->
      m2 :=
        Stack.submit stack ~src:0
          ~dep:(Dep.after (Option.get !m1))
          "m2");
  Stack.run stack;
  let l1 = Option.get !m1 and l2 = Option.get !m2 in
  (* Node 0 saw both; 1 and 2 hold m2 hostage to the swallowed m1. *)
  check_int "node 0 delivered" 2 (Stack.delivered_count stack 0);
  check_int "node 1 delivered" 0 (Stack.delivered_count stack 1);
  check_int "node 2 delivered" 0 (Stack.delivered_count stack 2);
  Alcotest.check labels_testable "node 1 blocked on m1" [ l1 ]
    (Stack.blocked_on stack 1);
  Alcotest.check labels_testable "node 2 blocked on m1" [ l1 ]
    (Stack.blocked_on stack 2);
  (* Recovery: re-broadcast m1 under its original label and predicate. *)
  let group = Option.get (Stack.osend_group stack) in
  Engine.schedule_at engine ~time:(Engine.now engine +. 1.0) (fun () ->
      Group.send_labelled group ~src:0 ~label:l1 ~dep:Dep.null "m1");
  Stack.run stack;
  List.iter
    (fun n ->
      check_int (Printf.sprintf "node %d caught up" n) 2
        (Stack.delivered_count stack n);
      Alcotest.check labels_testable
        (Printf.sprintf "node %d unblocked" n)
        [] (Stack.blocked_on stack n))
    [ 0; 1; 2 ];
  Alcotest.check labels_testable "node 1 order" [ l1; l2 ]
    (Stack.delivered_order stack 1);
  check "same set everywhere" true
    (Checker.same_set (Stack.all_delivered_orders stack))

(* FIFO and BSS infer their ordering and never name ancestors. *)
let test_blocked_on_empty_for_inferred () =
  List.iter
    (fun ordering ->
      let engine = Engine.create ~seed:41 () in
      let stack =
        Stack.compose ~ordering ~latency ~fifo:false engine ~nodes ()
      in
      drive engine (fun i ~sync:_ ~dep ->
          Stack.submit stack ~src:(i mod nodes) ~dep i);
      List.iter
        (fun n ->
          Alcotest.check labels_testable "no named ancestors" []
            (Stack.blocked_on stack n))
        [ 0; 1; 2 ])
    [ Stack.Fifo; Stack.Bss ]

let () =
  Alcotest.run "stack"
    [
      ( "equivalence",
        [
          Alcotest.test_case "fifo = standalone" `Quick
            test_stack_matches_standalone_fifo;
          Alcotest.test_case "bss = standalone" `Quick
            test_stack_matches_standalone_bss;
          Alcotest.test_case "osend = standalone" `Quick
            test_stack_matches_standalone_osend;
          Alcotest.test_case "merge = standalone" `Quick
            test_stack_matches_standalone_merge;
        ] );
      ( "compositions",
        [
          Alcotest.test_case "sequencer" `Quick test_sequencer_composition;
          Alcotest.test_case "sequencer requires osend" `Quick
            test_sequencer_requires_osend;
          Alcotest.test_case "counted" `Quick test_counted_composition;
          Alcotest.test_case "describe" `Quick test_describe;
          Alcotest.test_case "metrics balance" `Quick test_metrics_balance;
          Alcotest.test_case "fig4 two-liner" `Quick test_fig4_two_liner;
        ] );
      ( "faults",
        [
          Alcotest.test_case "partition/heal blocked_on" `Quick
            test_partition_heal_blocked_on;
          Alcotest.test_case "fifo/bss never name ancestors" `Quick
            test_blocked_on_empty_for_inferred;
        ] );
    ]
