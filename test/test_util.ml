(* Unit tests for the utility substrate: heap, fqueue, rng, stats,
   table. *)

module Heap = Causalb_util.Heap
module Fqueue = Causalb_util.Fqueue
module Rng = Causalb_util.Rng
module Stats = Causalb_util.Stats
module Table = Causalb_util.Table

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* --- Heap --- *)

let test_heap_empty () =
  let h = Heap.create ~cmp:Int.compare () in
  check "empty" true (Heap.is_empty h);
  check_int "length" 0 (Heap.length h);
  check "peek none" true (Heap.peek h = None);
  check "pop none" true (Heap.pop h = None)

let test_heap_ordering () =
  let h = Heap.create ~cmp:Int.compare () in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2; 7 ];
  Alcotest.(check (list int)) "ascending" [ 1; 2; 3; 5; 7; 8; 9 ] (Heap.drain h);
  check "drained" true (Heap.is_empty h)

let test_heap_duplicates () =
  let h = Heap.create ~cmp:Int.compare () in
  List.iter (Heap.push h) [ 2; 2; 1; 2; 1 ];
  Alcotest.(check (list int)) "dups kept" [ 1; 1; 2; 2; 2 ] (Heap.drain h)

let test_heap_pop_exn () =
  let h = Heap.create ~cmp:Int.compare () in
  Alcotest.check_raises "pop_exn empty"
    (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h));
  Heap.push h 42;
  check_int "pop_exn" 42 (Heap.pop_exn h)

let test_heap_interleaved () =
  let h = Heap.create ~cmp:Int.compare () in
  Heap.push h 3;
  Heap.push h 1;
  check_int "min first" 1 (Heap.pop_exn h);
  Heap.push h 0;
  Heap.push h 2;
  check_int "new min" 0 (Heap.pop_exn h);
  check_int "then 2" 2 (Heap.pop_exn h);
  check_int "then 3" 3 (Heap.pop_exn h)

let test_heap_custom_cmp () =
  let h = Heap.create ~cmp:(fun a b -> Int.compare b a) () in
  List.iter (Heap.push h) [ 1; 5; 3 ];
  Alcotest.(check (list int)) "max-heap" [ 5; 3; 1 ] (Heap.drain h)

let test_heap_clear_and_to_list () =
  let h = Heap.create ~cmp:Int.compare () in
  List.iter (Heap.push h) [ 4; 2; 6 ];
  check_int "to_list size" 3 (List.length (Heap.to_list h));
  check_int "unchanged" 3 (Heap.length h);
  Heap.clear h;
  check "cleared" true (Heap.is_empty h)

let test_heap_large () =
  let h = Heap.create ~cmp:Int.compare () in
  let rng = Rng.create 7 in
  let values = List.init 10_000 (fun _ -> Rng.int rng 1_000_000) in
  List.iter (Heap.push h) values;
  let out = Heap.drain h in
  check "sorted output" true (out = List.sort Int.compare values)

(* Duplicate priorities with distinguishable payloads: every payload
   must survive, grouped by ascending priority — the event queue relies
   on no element being lost or duplicated when keys tie. *)
let test_heap_equal_keys_payloads () =
  let h = Heap.create ~cmp:(fun (a, _) (b, _) -> Int.compare a b) () in
  let items = List.init 30 (fun i -> (i mod 3, i)) in
  List.iter (Heap.push h) items;
  let out = Heap.drain h in
  check_int "all kept" 30 (List.length out);
  let prios = List.map fst out in
  check "priorities ascending" true (prios = List.sort Int.compare prios);
  Alcotest.(check (list int)) "payload multiset preserved"
    (List.sort Int.compare (List.map snd items))
    (List.sort Int.compare (List.map snd out))

(* Interleaved push/pop straddling the internal growth boundary: start
   from a tiny capacity hint so every doubling happens mid-test, and
   keep a sorted-list model alongside. *)
let test_heap_growth_boundary () =
  let h = Heap.create ~capacity:1 ~cmp:Int.compare () in
  let model = ref [] in
  let push v =
    Heap.push h v;
    model := List.sort Int.compare (v :: !model)
  in
  let pop () =
    let got = Heap.pop h in
    let want = match !model with [] -> None | x :: rest -> model := rest; Some x in
    check "pop matches model" true (got = want)
  in
  (* fill across 1 -> 2 -> 4 -> 8 -> ... doublings, popping at each
     power-of-two length so push and pop both cross the boundary *)
  for i = 0 to 129 do
    push ((i * 37) mod 101);
    let len = Heap.length h in
    if len land (len - 1) = 0 then pop ()
  done;
  while not (Heap.is_empty h) do
    pop ()
  done;
  check "model drained too" true (!model = []);
  check "pop after empty" true (Heap.pop h = None)

(* --- Fqueue --- *)

let test_fqueue_empty () =
  let q = Fqueue.create () in
  check "empty" true (Fqueue.is_empty q);
  check_int "length" 0 (Fqueue.length q);
  check "peek none" true (Fqueue.peek q = None);
  check "pop none" true (Fqueue.pop q = None)

let test_fqueue_fifo () =
  let q = Fqueue.create () in
  List.iter (Fqueue.push q) [ 1; 2; 3 ];
  check "peek head" true (Fqueue.peek q = Some 1);
  Alcotest.(check (list int)) "to_list order" [ 1; 2; 3 ] (Fqueue.to_list q);
  check_int "to_list non-destructive" 3 (Fqueue.length q);
  check "pops in order" true
    (Fqueue.pop q = Some 1 && Fqueue.pop q = Some 2 && Fqueue.pop q = Some 3);
  check "then empty" true (Fqueue.pop q = None)

(* Interleaved push/pop with repeated full drains: a queue emptied and
   refilled must not resurrect old elements or reorder new ones — the
   wakeup buckets are emptied and reused exactly like this. *)
let test_fqueue_interleaved () =
  let q = Fqueue.create () in
  let model = Queue.create () in
  let push v =
    Fqueue.push q v;
    Queue.push v model
  in
  let pop () =
    let got = Fqueue.pop q in
    let want = Queue.take_opt model in
    check "pop matches model" true (got = want)
  in
  for round = 0 to 5 do
    for i = 0 to (10 * round) + 3 do
      push ((round * 100) + i);
      if i mod 3 = 0 then pop ()
    done;
    (* full drain at the round boundary *)
    while not (Fqueue.is_empty q) do
      pop ()
    done;
    check "model empty too" true (Queue.is_empty model);
    check "pop on emptied queue" true (Fqueue.pop q = None)
  done

let test_fqueue_traversals () =
  let q = Fqueue.create () in
  List.iter (Fqueue.push q) [ 10; 20; 30 ];
  let seen = ref [] in
  Fqueue.iter (fun v -> seen := v :: !seen) q;
  Alcotest.(check (list int)) "iter in order" [ 10; 20; 30 ] (List.rev !seen);
  check_int "fold sums" 60 (Fqueue.fold ( + ) 0 q);
  check_int "still full" 3 (Fqueue.length q);
  let drained = ref [] in
  Fqueue.drain (fun v -> drained := v :: !drained) q;
  Alcotest.(check (list int)) "drain in order" [ 10; 20; 30 ]
    (List.rev !drained);
  check "drain empties" true (Fqueue.is_empty q);
  Fqueue.push q 1;
  Fqueue.clear q;
  check "clear empties" true (Fqueue.is_empty q)

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 123 and b = Rng.create 123 in
  let sa = List.init 100 (fun _ -> Rng.int64 a) in
  let sb = List.init 100 (fun _ -> Rng.int64 b) in
  check "same seed same stream" true (sa = sb)

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let sa = List.init 10 (fun _ -> Rng.int64 a) in
  let sb = List.init 10 (fun _ -> Rng.int64 b) in
  check "different seeds differ" true (sa <> sb)

let test_rng_split_independent () =
  let a = Rng.create 9 in
  let b = Rng.split a in
  let sa = List.init 50 (fun _ -> Rng.int64 a) in
  let sb = List.init 50 (fun _ -> Rng.int64 b) in
  check "split streams differ" true (sa <> sb)

let test_rng_split_deterministic () =
  let mk () =
    let a = Rng.create 11 in
    let b = Rng.split a in
    (List.init 20 (fun _ -> Rng.int64 a), List.init 20 (fun _ -> Rng.int64 b))
  in
  check "reproducible split" true (mk () = mk ())

let test_rng_copy () =
  let a = Rng.create 5 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  check "copy replays" true
    (List.init 10 (fun _ -> Rng.int64 a) = List.init 10 (fun _ -> Rng.int64 b))

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    check "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_float_bounds () =
  let rng = Rng.create 4 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    check "in range" true (v >= 0.0 && v < 2.5)
  done

let test_rng_bernoulli_extremes () =
  let rng = Rng.create 6 in
  for _ = 1 to 100 do
    check "p=0 never" false (Rng.bernoulli rng 0.0);
    check "p=1 always" true (Rng.bernoulli rng 1.0)
  done

let test_rng_exponential_mean () =
  let rng = Rng.create 8 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let v = Rng.exponential rng ~mean:5.0 in
    check "positive" true (v >= 0.0);
    sum := !sum +. v
  done;
  let mean = !sum /. float_of_int n in
  check "mean close to 5" true (abs_float (mean -. 5.0) < 0.3)

let test_rng_gaussian_moments () =
  let rng = Rng.create 10 in
  let n = 20_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let v = Rng.gaussian rng ~mu:3.0 ~sigma:2.0 in
    sum := !sum +. v;
    sumsq := !sumsq +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  check "mean ~3" true (abs_float (mean -. 3.0) < 0.1);
  check "var ~4" true (abs_float (var -. 4.0) < 0.3)

let test_rng_pareto_scale () =
  let rng = Rng.create 12 in
  for _ = 1 to 1000 do
    check "above scale" true (Rng.pareto rng ~scale:1.5 ~shape:2.0 >= 1.5)
  done

let test_rng_shuffle_permutation () =
  let rng = Rng.create 13 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  check "is permutation" true (sorted = Array.init 50 Fun.id)

let test_rng_pick () =
  let rng = Rng.create 14 in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    check "member" true (Array.mem (Rng.pick rng a) a)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Rng.pick rng [||]))

(* --- Stats --- *)

let test_stats_empty () =
  let s = Stats.create () in
  check_int "count" 0 (Stats.count s);
  check "mean nan" true (Float.is_nan (Stats.mean s));
  check "percentile nan" true (Float.is_nan (Stats.percentile s 50.0))

let test_stats_single () =
  let s = Stats.create () in
  Stats.add s 7.0;
  check_float "mean" 7.0 (Stats.mean s);
  check_float "min" 7.0 (Stats.min_value s);
  check_float "max" 7.0 (Stats.max_value s);
  check_float "median" 7.0 (Stats.median s);
  check_float "variance" 0.0 (Stats.variance s)

let test_stats_mean_variance () =
  let s = Stats.create () in
  Stats.add_list s [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_float "mean" 5.0 (Stats.mean s);
  (* population variance is 4; sample variance = 32/7 *)
  check_float "variance" (32.0 /. 7.0) (Stats.variance s);
  check_float "total" 40.0 (Stats.total s)

let test_stats_percentiles () =
  let s = Stats.create () in
  Stats.add_list s (List.init 101 float_of_int);
  check_float "p0" 0.0 (Stats.percentile s 0.0);
  check_float "p50" 50.0 (Stats.percentile s 50.0);
  check_float "p99" 99.0 (Stats.percentile s 99.0);
  check_float "p100" 100.0 (Stats.percentile s 100.0);
  check_float "p25" 25.0 (Stats.percentile s 25.0)

let test_stats_percentile_interpolation () =
  let s = Stats.create () in
  Stats.add_list s [ 10.0; 20.0 ];
  check_float "p50 interpolated" 15.0 (Stats.percentile s 50.0);
  check_float "p75" 17.5 (Stats.percentile s 75.0)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  Stats.add_list a [ 1.0; 2.0 ];
  Stats.add_list b [ 3.0; 4.0 ];
  let m = Stats.merge a b in
  check_int "count" 4 (Stats.count m);
  check_float "mean" 2.5 (Stats.mean m)

let test_stats_unsorted_input () =
  let s = Stats.create () in
  Stats.add_list s [ 9.0; 1.0; 5.0 ];
  check_float "median of unsorted" 5.0 (Stats.median s);
  Stats.add s 0.0;
  (* cache must invalidate on add *)
  check_float "median updates" 3.0 (Stats.median s)

let test_histogram () =
  let h = Stats.Histogram.create ~bins:4 ~lo:0.0 ~hi:4.0 () in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 1.6; 3.9; -1.0; 99.0 ];
  Alcotest.(check (array int)) "counts" [| 2; 2; 0; 2 |] (Stats.Histogram.counts h);
  check "render nonempty" true (String.length (Stats.Histogram.render h) > 0)

let test_histogram_validation () =
  Alcotest.check_raises "bins 0"
    (Invalid_argument "Histogram.create: bins must be positive") (fun () ->
      ignore (Stats.Histogram.create ~bins:0 ~lo:0.0 ~hi:1.0 ()));
  Alcotest.check_raises "lo >= hi"
    (Invalid_argument "Histogram.create: need lo < hi") (fun () ->
      ignore (Stats.Histogram.create ~lo:1.0 ~hi:1.0 ()))

(* --- Table --- *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let test_table_render () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "b" ] in
  Table.add_row t [ "1"; "hello" ];
  Table.add_row t [ "22"; "x" ];
  let s = Table.render t in
  check "has title" true (String.length s > 0 && String.sub s 0 7 = "== demo");
  check "contains hello" true (contains s "hello")

let test_table_arity () =
  let t = Table.create ~title:"t" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "arity"
    (Invalid_argument "Table.add_row: expected 2 cells, got 1") (fun () ->
      Table.add_row t [ "only" ])

let test_table_rowf () =
  let t = Table.create ~title:"t" ~columns:[ "x"; "y"; "z" ] in
  Table.add_rowf t "%d\t%.1f\t%s" 3 2.5 "ok";
  check "csv" true (Table.to_csv t = "x,y,z\n3,2.5,ok")

let test_table_csv_escaping () =
  let t = Table.create ~title:"t" ~columns:[ "v" ] in
  Table.add_row t [ "a,b" ];
  Table.add_row t [ "say \"hi\"" ];
  check "escaped" true
    (Table.to_csv t = "v\n\"a,b\"\n\"say \"\"hi\"\"\"")

let test_stats_summary () =
  let s = Stats.create () in
  check "empty summary" true (Stats.summary s = "n=0");
  Stats.add_list s [ 1.0; 2.0; 3.0 ];
  check "summary mentions count" true (contains (Stats.summary s) "n=3");
  check "summary mentions mean" true (contains (Stats.summary s) "mean=2.000")

let test_stats_samples_copy () =
  let s = Stats.create () in
  Stats.add_list s [ 5.0; 1.0 ];
  let a = Stats.samples s in
  check "insertion order" true (a = [| 5.0; 1.0 |]);
  a.(0) <- 99.0;
  check "copy, not alias" true (Stats.samples s = [| 5.0; 1.0 |])

let test_table_formatters () =
  check "float" true (Table.fmt_float ~digits:2 1.2345 = "1.23");
  check "float nan" true (Table.fmt_float Float.nan = "-");
  check "pct" true (Table.fmt_pct 0.256 = "25.6%");
  check "int" true (Table.fmt_int 42 = "42")

let () =
  Alcotest.run "util"
    [
      ( "heap",
        [
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "duplicates" `Quick test_heap_duplicates;
          Alcotest.test_case "pop_exn" `Quick test_heap_pop_exn;
          Alcotest.test_case "interleaved" `Quick test_heap_interleaved;
          Alcotest.test_case "custom cmp" `Quick test_heap_custom_cmp;
          Alcotest.test_case "clear/to_list" `Quick test_heap_clear_and_to_list;
          Alcotest.test_case "large random" `Quick test_heap_large;
          Alcotest.test_case "equal keys keep payloads" `Quick
            test_heap_equal_keys_payloads;
          Alcotest.test_case "growth boundary" `Quick
            test_heap_growth_boundary;
        ] );
      ( "fqueue",
        [
          Alcotest.test_case "empty" `Quick test_fqueue_empty;
          Alcotest.test_case "fifo" `Quick test_fqueue_fifo;
          Alcotest.test_case "interleaved drains" `Quick
            test_fqueue_interleaved;
          Alcotest.test_case "traversals" `Quick test_fqueue_traversals;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "split deterministic" `Quick test_rng_split_deterministic;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "pareto scale" `Quick test_rng_pareto_scale;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "pick" `Quick test_rng_pick;
        ] );
      ( "stats",
        [
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "single" `Quick test_stats_single;
          Alcotest.test_case "mean/variance" `Quick test_stats_mean_variance;
          Alcotest.test_case "percentiles" `Quick test_stats_percentiles;
          Alcotest.test_case "interpolation" `Quick test_stats_percentile_interpolation;
          Alcotest.test_case "merge" `Quick test_stats_merge;
          Alcotest.test_case "unsorted input" `Quick test_stats_unsorted_input;
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "samples copy" `Quick test_stats_samples_copy;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "histogram validation" `Quick test_histogram_validation;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity" `Quick test_table_arity;
          Alcotest.test_case "rowf" `Quick test_table_rowf;
          Alcotest.test_case "csv escaping" `Quick test_table_csv_escaping;
          Alcotest.test_case "formatters" `Quick test_table_formatters;
        ] );
    ]
