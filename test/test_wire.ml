(* Tests for the binary wire codec and the framed delivery path.

   Three layers of assurance, mirroring the module layering:

   1. Wire primitives: qcheck round-trips (decode . encode = id) for
      varints, zigzag, strings (arbitrary bytes), bools; every strict
      prefix of a valid frame raises [Corrupt] — the decoder never
      returns garbage for truncated input.

   2. Codec: round-trips for labels (display name preserved exactly),
      deps (canonical after decode), clocks, messages, envelopes; a
      codec hop in front of the indexed BSS engine changes nothing
      against the frozen seed oracle in [Causalb_reference].

   3. Fgroup: a framed group run is envelope-for-envelope identical to
      the plain group run for the same seed and workload — encode-once/
      decode-many is an optimisation, not a semantics change — and the
      byte accounting (Metrics.wire_bytes, Net.bytes_sent) moves by real
      frame lengths. *)

module Wire = Causalb_util.Wire
module Label = Causalb_graph.Label
module Dep = Causalb_graph.Dep
module Vc = Causalb_clock.Vector_clock
module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Net = Causalb_net.Net
module Message = Causalb_core.Message
module Codec = Causalb_core.Codec
module Bss = Causalb_core.Bss
module Group = Causalb_core.Group
module Psync = Causalb_core.Psync
module Fgroup = Causalb_core.Fgroup
module Pcb = Causalb_core.Pcbcast
module Rbss = Causalb_reference.Bss
module Metrics = Causalb_stackbase.Metrics

let test ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let pool = Wire.pool ()

let roundtrip enc dec v = Codec.decode dec (Codec.encode pool enc v)

(* --- 1. primitives --- *)

let prop_uint_roundtrip =
  test "wire: uint round-trip" QCheck2.Gen.(0 -- max_int) (fun n ->
      roundtrip Wire.uint Wire.r_uint n = n)

let prop_int_roundtrip =
  test "wire: zigzag int round-trip" QCheck2.Gen.int (fun n ->
      roundtrip Wire.int Wire.r_int n = n)

let prop_str_roundtrip =
  test "wire: string round-trip (raw bytes)"
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (0 -- 64))
    (fun s -> roundtrip Wire.str Wire.r_str s = s)

let test_extremes () =
  List.iter
    (fun n -> check_int "zigzag extreme" n (roundtrip Wire.int Wire.r_int n))
    [ max_int; min_int; 0; -1; 1; min_int + 1; max_int - 1 ];
  check_int "uint max" max_int (roundtrip Wire.uint Wire.r_uint max_int);
  (* small magnitudes of either sign stay in one byte *)
  let size enc v = Wire.length (Codec.encode pool enc v) in
  check_int "zigzag -64 is 1 byte" 1 (size Wire.int (-64));
  check_int "zigzag 63 is 1 byte" 1 (size Wire.int 63);
  check_int "uint 127 is 1 byte" 1 (size Wire.uint 127);
  check "uint rejects negatives" true
    (try
       ignore (Codec.encode pool Wire.uint (-1));
       false
     with Invalid_argument _ -> true);
  check "u8 rejects 256" true
    (try
       ignore (Codec.encode pool (fun w v -> Wire.u8 w v) 256);
       false
     with Invalid_argument _ -> true)

(* Large-magnitude varints: the PC header carries member ids and
   per-origin sequence numbers as bare varints, and long-lived dynamic
   groups push both past the one-, two- and three-byte boundaries —
   ids beyond 2^21, seqs beyond 2^28 must round-trip and stay compact. *)
let prop_varint_header_magnitudes =
  test "wire: varints at PC-header magnitudes"
    QCheck2.Gen.(
      pair (0x200000 -- 0x2000000) (0x10000000 -- 0x10000000000))
    (fun (id, seq) ->
      roundtrip Wire.uint Wire.r_uint id = id
      && roundtrip Wire.uint Wire.r_uint seq = seq
      && roundtrip Wire.int Wire.r_int (-seq) = -seq)

let test_varint_magnitude_sizes () =
  let size v = Wire.length (Codec.encode pool Wire.uint v) in
  (* 7 bits per byte: the boundaries where a varint grows *)
  check_int "2^21 id is 4 bytes" 4 (size 0x200000);
  check_int "2^28 seq is 5 bytes" 5 (size 0x10000000);
  check_int "2^28 - 1 is 4 bytes" 4 (size 0xFFFFFFF);
  List.iter
    (fun v -> check_int "uint large round-trip" v
        (roundtrip Wire.uint Wire.r_uint v))
    [ 0x200000; 0x200001; 0x10000000; 0x123456789A; max_int ]

(* --- generators for protocol values --- *)

let label_gen =
  let open QCheck2.Gen in
  int_range 0 7 >>= fun origin ->
  int_range 0 1000 >>= fun seq ->
  oneof
    [
      return (Label.make ~origin ~seq ());
      ( string_size ~gen:printable (1 -- 8) >|= fun name ->
        Label.make ~name ~origin ~seq () );
    ]

let dep_gen =
  let open QCheck2.Gen in
  oneof
    [
      return Dep.null;
      (label_gen >|= Dep.after);
      (list_size (1 -- 4) label_gen >|= Dep.after_all);
      (list_size (1 -- 4) label_gen >|= Dep.after_any);
    ]

let clock_gen =
  let open QCheck2.Gen in
  int_range 1 8 >>= fun n ->
  array_size (return n) (int_range 0 1000) >|= Vc.of_array

let message_gen =
  let open QCheck2.Gen in
  label_gen >>= fun label ->
  int_range 0 7 >>= fun sender ->
  dep_gen >>= fun dep ->
  string_size ~gen:(char_range '\000' '\255') (0 -- 16) >|= fun payload ->
  Message.make ~label ~sender ~dep payload

let envelope_gen =
  let open QCheck2.Gen in
  int_range 0 7 >>= fun sender ->
  clock_gen >>= fun stamp ->
  string_size ~gen:printable (0 -- 8) >>= fun tag ->
  string_size ~gen:printable (0 -- 16) >|= fun payload ->
  { Bss.sender; stamp; tag; payload }

(* Full equality including the display-name structure the codec must
   preserve (Label.equal ignores it on purpose). *)
let label_eq a b =
  Label.equal a b && Label.display a = Label.display b

let dep_eq a b =
  match (a, b) with
  | Dep.Null, Dep.Null -> true
  | Dep.After x, Dep.After y -> label_eq x y
  | Dep.After_all xs, Dep.After_all ys | Dep.After_any xs, Dep.After_any ys ->
    List.length xs = List.length ys && List.for_all2 label_eq xs ys
  | _ -> false

(* --- 2. codec round-trips --- *)

let prop_label_roundtrip =
  test "codec: label round-trip (display preserved)" label_gen (fun l ->
      label_eq l (roundtrip Codec.put_label Codec.get_label l))

let prop_dep_roundtrip =
  test "codec: dep round-trip" dep_gen (fun d ->
      dep_eq d (roundtrip Codec.put_dep Codec.get_dep d))

let prop_clock_roundtrip =
  test "codec: clock round-trip" clock_gen (fun v ->
      Vc.equal v (roundtrip Codec.put_clock Codec.get_clock v))

let prop_message_roundtrip =
  test "codec: message round-trip" message_gen (fun m ->
      let m' =
        roundtrip (Codec.put_message Codec.put_str)
          (Codec.get_message Codec.get_str)
          m
      in
      label_eq (Message.label m) (Message.label m')
      && Message.sender m = Message.sender m'
      && dep_eq (Message.dep m) (Message.dep m')
      && Message.payload m = Message.payload m')

let prop_envelope_roundtrip =
  test "codec: envelope round-trip" envelope_gen (fun e ->
      let e' =
        roundtrip
          (Codec.put_envelope Codec.put_str)
          (Codec.get_envelope Codec.get_str)
          e
      in
      e'.Bss.sender = e.Bss.sender
      && Vc.equal e'.Bss.stamp e.Bss.stamp
      && e'.Bss.tag = e.Bss.tag
      && e'.Bss.payload = e.Bss.payload)

(* PC wire frames: every discriminator case, with ids and seqs at the
   magnitudes a long-lived dynamic group reaches. *)
let pc_wire_gen =
  let open QCheck2.Gen in
  let* origin = oneof [ int_range 0 7; int_range 0x200000 0x2000000 ] in
  let* seq = oneof [ int_range 0 1000; int_range 0x10000000 0x20000000 ] in
  let* tag = string_size ~gen:printable (0 -- 8) in
  let* body =
    oneof
      [
        ( string_size ~gen:(char_range '\000' '\255') (0 -- 16) >|= fun p ->
          Pcb.App p );
        (int_range 0 0x300000 >|= fun t -> Pcb.Ctrl (Pcb.Unlock { target = t }));
        (int_range 0 0x300000 >|= fun n -> Pcb.Ctrl (Pcb.Joined { node = n }));
      ]
  in
  oneofl [ Pcb.Env { Pcb.origin; seq; tag; body }; Pcb.Lock ]

let prop_pc_roundtrip =
  test "codec: pc wire round-trip" pc_wire_gen (fun w ->
      roundtrip (Codec.put_pc Codec.put_str) (Codec.get_pc Codec.get_str) w
      = w)

(* The split the metrics layer charges: an App frame's control span is
   the whole frame minus the payload bytes; control frames are all
   control.  [encode_pc] must agree with what [put_pc] writes. *)
let test_pc_encode_split () =
  let app =
    Pcb.Env { Pcb.origin = 3; seq = 9; tag = "t"; body = Pcb.App "payload" }
  in
  let frame, span = Codec.encode_pc pool Codec.put_str app in
  check "pc app payload span positive" true (span > 0);
  check "pc app span < frame" true (span < Wire.length frame);
  check "pc app decodes" true
    (Codec.decode (Codec.get_pc Codec.get_str) frame = app);
  let lock_frame, lock_span = Codec.encode_pc pool Codec.put_str Pcb.Lock in
  check_int "pc lock is all control" 0 lock_span;
  check "pc lock decodes" true
    (Codec.decode (Codec.get_pc Codec.get_str) lock_frame = Pcb.Lock);
  let ctrl =
    Pcb.Env
      { Pcb.origin = 1; seq = 0; tag = ""; body = Pcb.Ctrl (Pcb.Joined { node = 5 }) }
  in
  let _, ctrl_span = Codec.encode_pc pool Codec.put_str ctrl in
  check_int "pc ctrl is all control" 0 ctrl_span

(* --- truncation hardening --- *)

(* A decoder over a strict prefix must fail cleanly: it needed every
   byte of the full frame, so some read hits the cut and raises
   [Corrupt] — never a silent wrong value, never an unchecked crash. *)
let prop_truncated_fails =
  test "codec: every strict prefix of a frame raises Corrupt"
    QCheck2.Gen.(pair message_gen (0 -- 1000))
    (fun (m, cut) ->
      let frame = Codec.encode pool (Codec.put_message Codec.put_str) m in
      let n = Wire.length frame in
      QCheck2.assume (n > 0);
      let cut = cut mod n in
      match
        Codec.decode (Codec.get_message Codec.get_str) (Wire.prefix frame cut)
      with
      | _ -> false
      | exception Wire.Corrupt _ -> true)

let test_trailing_bytes () =
  let frame = Codec.encode pool Wire.uint 7 in
  let padded = Wire.of_string (Wire.to_string frame ^ "\000") in
  check "trailing bytes raise Corrupt" true
    (match Codec.decode Wire.r_uint padded with
    | _ -> false
    | exception Wire.Corrupt _ -> true);
  check "bad dep tag raises Corrupt" true
    (match Codec.decode Codec.get_dep (Wire.of_string "\009") with
    | _ -> false
    | exception Wire.Corrupt _ -> true);
  check "clock of size 0 raises Corrupt" true
    (match Codec.decode Codec.get_clock (Wire.of_string "\000") with
    | _ -> false
    | exception Wire.Corrupt _ -> true)

(* --- shared views decode once --- *)

let test_view_memoized () =
  let e =
    {
      Bss.sender = 1;
      stamp = Vc.of_array [| 1; 2; 3 |];
      tag = "t";
      payload = "p";
    }
  in
  let fr =
    Codec.framed (Codec.encode pool (Codec.put_envelope Codec.put_str) e)
  in
  let dec = Codec.get_envelope Codec.get_str in
  let v1 = Codec.view fr ~dec in
  let v2 = Codec.view fr ~dec in
  check "second view is the first (memoized)" true (v1 == v2);
  check "view decodes the envelope" true (Vc.equal v1.Bss.stamp e.Bss.stamp)

(* --- 3. codec hop vs the frozen seed oracle --- *)

(* Same arrival sequence: raw envelopes into the reference engine,
   encode/decode-hopped envelopes into the indexed engine.  Any codec
   bug that perturbs a stamp or tag shows up as a delivered-order
   mismatch against the oracle. *)
let bss_codec_oracle_gen =
  let open QCheck2.Gen in
  int_range 2 4 >>= fun nodes ->
  list_size (0 -- 24)
    (triple (int_range 0 (nodes - 1))
       (int_range 1 6)
       (list_size (return nodes) (int_range 0 6)))
  >|= fun raw -> (nodes, raw)

let prop_codec_hop_vs_oracle =
  test "codec: encode/decode hop = oracle on the BSS engine"
    bss_codec_oracle_gen
    (fun (nodes, raw) ->
      let reference = Rbss.member ~id:0 ~group_size:nodes () in
      let hopped = Bss.member ~id:0 ~group_size:nodes () in
      let enc = Codec.put_envelope Codec.put_str in
      let dec = Codec.get_envelope Codec.get_str in
      List.iteri
        (fun i (s, seq, comps) ->
          let comps = Array.of_list comps in
          comps.(s) <- seq;
          let e =
            {
              Bss.sender = s;
              stamp = Vc.of_array comps;
              tag = Printf.sprintf "%d:%d" s i;
              payload = "x";
            }
          in
          Rbss.receive reference e;
          Bss.receive hopped (Codec.decode dec (Codec.encode pool enc e)))
        raw;
      Rbss.delivered_tags reference = Bss.delivered_tags hopped
      && Rbss.pending_count reference = Bss.pending_count hopped
      && Rbss.buffered_ever reference = Bss.buffered_ever hopped)

(* --- framed groups = plain groups, same seed --- *)

let lat () = Latency.lognormal ~mu:0.3 ~sigma:0.9 ()

let nodes = 4

let ops = 60

(* Schedule op [i] at time i/2 from sender [i mod nodes]; the two runs
   share nothing but the seed, so equality means the framed path made
   exactly the same RNG draws and deliveries. *)
let schedule_ops engine f =
  for i = 0 to ops - 1 do
    Engine.schedule_at engine ~time:(0.5 *. float_of_int i) (fun () -> f i)
  done;
  Engine.run engine

let bss_plain seed =
  let engine = Engine.create ~seed () in
  let net = Net.create engine ~nodes ~latency:(lat ()) () in
  let g = Bss.Group.create net () in
  schedule_ops engine (fun i ->
      Bss.Group.bcast g ~src:(i mod nodes) ~tag:(Printf.sprintf "t%d" i)
        (Printf.sprintf "p%d" i));
  (List.init nodes (Bss.Group.delivered_tags g), Net.bytes_sent net)

let bss_framed seed =
  let engine = Engine.create ~seed () in
  let net = Net.create engine ~nodes ~latency:(lat ()) () in
  let g = Fgroup.Bss.create net ~enc:Codec.put_str ~dec:Codec.get_str () in
  schedule_ops engine (fun i ->
      Fgroup.Bss.bcast g ~src:(i mod nodes) ~tag:(Printf.sprintf "t%d" i)
        (Printf.sprintf "p%d" i));
  (List.init nodes (Fgroup.Bss.delivered_tags g), Net.bytes_sent net, g)

let test_bss_framed_equiv () =
  List.iter
    (fun seed ->
      let plain, plain_bytes = bss_plain seed in
      let framed, framed_bytes, g = bss_framed seed in
      check "bss: framed tags = plain tags (all members)" true (plain = framed);
      List.iter
        (fun tags -> check_int "bss: everyone delivered all" ops
            (List.length tags))
        framed;
      (* plain path books the abstract default size (1/copy); framed
         books real frame lengths, which include a stamp of [nodes]
         components and can only be bigger *)
      check "bss: framed bytes are real" true (framed_bytes > plain_bytes);
      (* every copy — including each sender's self copy — is charged on
         send and again on receive, and nothing is dropped here, so the
         two sides of the wire agree exactly *)
      check_int "bss: received bytes = sent bytes"
        framed_bytes (Fgroup.Bss.wire_bytes g);
      let m = Fgroup.Bss.metrics g 0 in
      check "bss: bytes/delivery populated" true
        (Metrics.bytes_per_delivery m > 0.0))
    [ 1; 7; 42; 1337 ]

let psync_plain seed =
  let engine = Engine.create ~seed () in
  let net = Net.create engine ~nodes ~latency:(lat ()) () in
  let g = Psync.create net () in
  schedule_ops engine (fun i ->
      ignore
        (Psync.send g ~src:(i mod nodes) ~name:(Printf.sprintf "s%d" i)
           (Printf.sprintf "p%d" i)));
  List.map (List.map Label.to_string) (Psync.all_delivered_orders g)

let psync_framed seed =
  let engine = Engine.create ~seed () in
  let net = Net.create engine ~nodes ~latency:(lat ()) () in
  let g = Fgroup.Psync.create net ~enc:Codec.put_str ~dec:Codec.get_str () in
  schedule_ops engine (fun i ->
      ignore
        (Fgroup.Psync.send g ~src:(i mod nodes) ~name:(Printf.sprintf "s%d" i)
           (Printf.sprintf "p%d" i)));
  ( List.map (List.map Label.to_string) (Fgroup.Psync.all_delivered_orders g),
    g )

let test_psync_framed_equiv () =
  List.iter
    (fun seed ->
      let plain = psync_plain seed in
      let framed, g = psync_framed seed in
      check "psync: framed orders = plain orders" true (plain = framed);
      check "psync: wire bytes flow" true (Fgroup.Psync.wire_bytes g > 0))
    [ 3; 11; 99 ]

(* Explicit deps: op i depends on ops i-1 and i/2 — a dependency chain
   plus cross links, enough reordering pressure to park messages. *)
let osend_run ~framed seed =
  let engine = Engine.create ~seed () in
  let labels = Array.make ops None in
  let dep_for i =
    if i = 0 then Dep.null
    else
      Dep.after_all
        (List.filter_map
           (fun j -> labels.(j))
           (List.sort_uniq Int.compare [ i - 1; i / 2 ]))
  in
  if framed then begin
    let net = Net.create engine ~nodes ~latency:(lat ()) () in
    let g = Fgroup.Osend.create net ~enc:Codec.put_str ~dec:Codec.get_str () in
    schedule_ops engine (fun i ->
        labels.(i) <-
          Some
            (Fgroup.Osend.osend g ~src:(i mod nodes)
               ~name:(Printf.sprintf "s%d" i) ~dep:(dep_for i)
               (Printf.sprintf "p%d" i)));
    List.map (List.map Label.to_string) (Fgroup.Osend.all_delivered_orders g)
  end
  else begin
    let net = Net.create engine ~nodes ~latency:(lat ()) () in
    let g = Group.create net () in
    schedule_ops engine (fun i ->
        labels.(i) <-
          Some
            (Group.osend g ~src:(i mod nodes) ~name:(Printf.sprintf "s%d" i)
               ~dep:(dep_for i)
               (Printf.sprintf "p%d" i)));
    List.map (List.map Label.to_string) (Group.all_delivered_orders g)
  end

let test_osend_framed_equiv () =
  List.iter
    (fun seed ->
      check "osend: framed orders = plain orders" true
        (osend_run ~framed:false seed = osend_run ~framed:true seed))
    [ 2; 13; 77 ]

let () =
  Alcotest.run "wire"
    [
      ( "primitives",
        [
          prop_uint_roundtrip;
          prop_int_roundtrip;
          prop_str_roundtrip;
          prop_varint_header_magnitudes;
          Alcotest.test_case "extremes and rejections" `Quick test_extremes;
          Alcotest.test_case "varint magnitude boundaries" `Quick
            test_varint_magnitude_sizes;
        ] );
      ( "codec",
        [
          prop_label_roundtrip;
          prop_dep_roundtrip;
          prop_clock_roundtrip;
          prop_message_roundtrip;
          prop_envelope_roundtrip;
          prop_pc_roundtrip;
          Alcotest.test_case "pc encode split" `Quick test_pc_encode_split;
          prop_truncated_fails;
          Alcotest.test_case "trailing/corrupt frames" `Quick
            test_trailing_bytes;
          Alcotest.test_case "shared view decodes once" `Quick
            test_view_memoized;
          prop_codec_hop_vs_oracle;
        ] );
      ( "framed groups",
        [
          Alcotest.test_case "bss framed = plain (same seed)" `Quick
            test_bss_framed_equiv;
          Alcotest.test_case "psync framed = plain (same seed)" `Quick
            test_psync_framed_equiv;
          Alcotest.test_case "osend framed = plain (same seed)" `Quick
            test_osend_framed_equiv;
        ] );
    ]
